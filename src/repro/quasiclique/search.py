"""Set-enumeration search engine for quasi-cliques (Algorithm 1 of the paper).

One engine drives the three tasks the paper needs:

* :meth:`QuasiCliqueSearch.enumerate_maximal` — all maximal γ-quasi-cliques
  (used by the Naive baseline, mirroring the Quick algorithm);
* :meth:`QuasiCliqueSearch.covered_vertices` — the set ``K`` of vertices that
  belong to at least one quasi-clique, computed with *cover pruning* and
  early termination (this is how SCPM evaluates the structural correlation);
* :meth:`QuasiCliqueSearch.top_k` — the k largest/densest patterns with the
  dynamically increasing size threshold of Section 3.2.3.

Candidates ``(X, candExts(X))`` are explored over a set-enumeration tree
(Figure 2 of the paper).  A deque gives the BFS strategy, a stack the DFS
strategy.  The pruning rules live in :mod:`repro.quasiclique.pruning`.

Internally the engine runs on the **bitset vertex-set engine**
(:mod:`repro.graph.vertexset`): the working vertices are relabelled to dense
local ids in ascending-degree order (the classical Eclat-style heuristic that
keeps candidate sets small near the root), adjacency becomes one int mask per
id, and every degree check of the inner loop is a single ``&`` plus a
popcount instead of a hashed set intersection.  Local id order *is* the
candidate-expansion rank, so iterating the set bits of a candidate mask in
ascending position replaces the seed implementation's per-node sort.  All
public entry points keep accepting and returning plain vertices and
``frozenset`` objects; a :class:`repro.graph.vertexset.VertexBitset` (or
:class:`repro.graph.sparseset.SparseVertexBitset`) bound to the graph's own
index is accepted as a zero-copy ``vertices=`` restriction.

The *global* vertex-set representation behind the search is pluggable
(``engine="dense"|"sparse"|"auto"``, see :mod:`repro.graph.engine`): the
index hands over the working adjacency already projected into the local id
space, so the enumeration core below is engine-agnostic and its results are
byte-identical across engines.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import (
    Dict,
    FrozenSet,
    Hashable,
    Iterable,
    List,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from repro.errors import ParameterError
from repro.graph.attributed_graph import AttributedGraph
from repro.graph.vertexset import VertexBitset, iter_bits
from repro.quasiclique.definitions import (
    QuasiCliqueParams,
    gamma_of_mask,
    satisfies_degree_condition_mask,
)
from repro.quasiclique.kernel import (
    KERNEL_AUTO_MIN_VERTICES,
    KERNEL_MAX_VERTICES,
    make_search_kernel,
    resolve_kernel_backend,
)
from repro.quasiclique.pruning import (
    MaskDistanceIndex,
    prune_low_degree_masks,
    restrict_candidates_masks,
    subtree_is_hopeless_masks,
)

Vertex = Hashable
VertexRestriction = Union[Iterable[Vertex], VertexBitset, None]

BFS = "bfs"
DFS = "dfs"
_ORDERS = (BFS, DFS)


class SearchBudgetExceeded(RuntimeError):
    """Raised when a node budget is set and the search would exceed it."""


@dataclass
class SearchStats:
    """Counters describing one quasi-clique search run.

    ``counter_updates`` counts the individual ``indeg_x``/``indeg_ext``
    increments and decrements the incremental kernel performed (0 when the
    search runs on the from-scratch oracle).  ``kernel_backend`` /
    ``kernel_dtype`` name the kernel backend that drove the search (e.g.
    ``"bigint"``/``"int"`` or ``"numpy"``/``"uint8"``; empty strings when
    the search ran on the oracle loop).  ``memo_hits``/``memo_misses``
    describe the :class:`~repro.quasiclique.memo.CoverageMemo` consultation
    that surrounded this search, when a caller such as
    :func:`repro.correlation.structural.structural_correlation_bitset`
    consulted one — a search object only ever exists after a miss, so on a
    search's own stats ``memo_hits`` stays 0 and ``memo_misses`` is at most
    1; the mining-level totals live in
    :class:`~repro.correlation.patterns.MiningCounters`.
    """

    nodes_expanded: int = 0
    lookahead_hits: int = 0
    satisfying_sets_found: int = 0
    pruned_hopeless: int = 0
    pruned_covered: int = 0
    pruned_by_size: int = 0
    counter_updates: int = 0
    memo_hits: int = 0
    memo_misses: int = 0
    kernel_backend: str = ""
    kernel_dtype: str = ""

    def kernel_backend_label(self) -> str:
        """Attribution label of the kernel that drove this search.

        ``""`` for oracle-driven searches, ``"bigint"`` for the SWAR
        kernel, ``"numpy(uint8)"``/``"numpy(uint16)"`` for the vectorised
        one — the vocabulary of
        :attr:`repro.correlation.patterns.MiningCounters.kernel_backends`.
        """
        if not self.kernel_backend:
            return ""
        if self.kernel_dtype in ("", "int"):
            return self.kernel_backend
        return f"{self.kernel_backend}({self.kernel_dtype})"


@dataclass
class _Node:
    """A search-tree node: the growing set X and its candidate extensions.

    ``members`` keeps the extension path as a tuple of local ids (cheap
    prefix sharing between siblings); ``members_mask`` and ``candidates``
    are masks in the same local id space.
    """

    members: Tuple[int, ...]
    members_mask: int
    candidates: int


class QuasiCliqueSearch:
    """Quasi-clique search over a graph or a vertex-restricted subgraph.

    Parameters
    ----------
    graph:
        The graph to search.  Only its adjacency is used; a vertex
        restriction makes the search equivalent to running on the induced
        subgraph without materialising it.
    params:
        Quasi-clique parameters ``(γ, min_size)``.
    vertices:
        Optional restriction of the working vertex set (used by SCPM's
        Theorem-3 vertex pruning: only vertices covered for every parent
        attribute set need to be considered).  Accepts any iterable of
        vertices or a :class:`~repro.graph.vertexset.VertexBitset` bound to
        ``graph.bitset_index()`` (zero-copy fast path).
    order:
        ``"dfs"`` (default) or ``"bfs"`` — the traversal strategy.
    use_distance_pruning:
        Enable the diameter-based candidate restriction (only effective for
        γ ≥ 0.5, where the bound is valid).
    node_budget:
        Optional hard cap on expanded nodes; exceeding it raises
        :class:`SearchBudgetExceeded`.  ``None`` (default) means unlimited.
    engine:
        Vertex-set engine of the graph index (``"dense"``, ``"sparse"`` or
        ``"auto"``; see :mod:`repro.graph.engine`).  Either engine yields
        byte-identical results; only memory/speed trade-offs differ.
    use_incremental_kernel:
        ``None`` (default) picks automatically: the incremental-counter
        kernel (:mod:`repro.quasiclique.kernel`) drives DFS searches in
        the regimes where its lane vectors beat from-scratch masks —
        every γ < 0.5 search (no usable diameter bound, fat candidate
        sets) and big-working-set searches
        (≥ :data:`~repro.quasiclique.kernel.KERNEL_AUTO_MIN_VERTICES`
        vertices); everything else keeps the historical from-scratch
        recomputation.  ``True`` forces the kernel (within its
        :data:`~repro.quasiclique.kernel.KERNEL_MAX_VERTICES` lane
        capacity), ``False`` forces the oracle — retained as the
        differential reference the kernel is fuzzed against.  Every
        choice produces byte-identical results and expansion counts.
    kernel_backend:
        Kernel *implementation* once a kernel is engaged: ``"bigint"``
        (SWAR lanes in one big int), ``"numpy"`` (lanes in a numpy
        array, bulk vector ops) or ``"auto"`` (default — resolved per
        search by :func:`repro.quasiclique.kernel.resolve_kernel_backend`:
        the ``REPRO_KERNEL_BACKEND`` environment override, then a
        working-set-size heuristic).  Orthogonal to
        ``use_incremental_kernel``, which decides *whether* a kernel
        runs at all; every backend produces byte-identical results and
        statistics.  When a kernel is forced
        (``use_incremental_kernel=True``) onto a working set beyond the
        resolved backend's lane capacity, construction raises a typed
        :class:`~repro.errors.KernelCapacityError` instead of silently
        falling back; automatic selection still falls back to the
        oracle loop.
    """

    def __init__(
        self,
        graph: AttributedGraph,
        params: QuasiCliqueParams,
        vertices: VertexRestriction = None,
        order: str = DFS,
        use_distance_pruning: bool = True,
        node_budget: Optional[int] = None,
        engine: str = "auto",
        use_incremental_kernel: Optional[bool] = None,
        kernel_backend: str = "auto",
    ) -> None:
        if order not in _ORDERS:
            raise ParameterError(f"order must be one of {_ORDERS}, got {order!r}")
        # Validate the backend name (and any environment override) up
        # front, even for searches that end up on the oracle loop.
        resolve_kernel_backend(kernel_backend, 0)
        self.params = params
        self.order = order
        self.node_budget = node_budget
        self.stats = SearchStats()

        index = graph.bitset_index(engine)
        working = index.working_mask(vertices)
        # Working adjacency in a provisional local id space (ascending global
        # id order).  The index materialises the dense local masks — the
        # sparse engine's only dense allocation, bounded by the working set —
        # and may pre-drop provably hopeless vertices (the dense prune below
        # reaches the same unique fixpoint either way).
        global_ids, provisional = index.local_adjacency(
            working, min_degree=params.base_degree_threshold
        )

        # Global vertex pruning (Section 3.2.1), then relabel the survivors
        # so that ascending local id == ascending (degree, repr) rank.
        alive, pruned = prune_low_degree_masks(provisional, params)
        vertex_of_global = index.indexer.vertex_of
        survivors = sorted(
            iter_bits(alive),
            key=lambda i: (pruned[i].bit_count(), repr(vertex_of_global(global_ids[i]))),
        )
        relabel = {old: new for new, old in enumerate(survivors)}
        self._adjacency: List[int] = []
        for old in survivors:
            mask = 0
            for neighbor in iter_bits(pruned[old]):
                mask |= 1 << relabel[neighbor]
            self._adjacency.append(mask)
        self._vertex_of: List[Vertex] = [
            vertex_of_global(global_ids[old]) for old in survivors
        ]
        self._id_of: Dict[Vertex, int] = {
            v: i for i, v in enumerate(self._vertex_of)
        }
        self._universe: int = (1 << len(survivors)) - 1
        self._distance_index = (
            MaskDistanceIndex(self._adjacency, params.distance_bound)
            if use_distance_pruning
            else None
        )
        if use_incremental_kernel is None:
            # Auto: DFS searches where the kernel's counter vectors beat
            # the from-scratch masks — the γ < 0.5 regime (no diameter
            # bound, fat candidate sets) at any size, and big working
            # sets otherwise.  BFS interleaves siblings of many parents,
            # keeping every shared counter vector alive at once, so it
            # stays on the oracle.
            use_kernel = order == DFS and (
                params.distance_bound == 0
                or len(survivors) >= KERNEL_AUTO_MIN_VERTICES
            )
        else:
            use_kernel = use_incremental_kernel
        # Counter lanes bound every kernel backend's local id space at
        # KERNEL_MAX_VERTICES.  Under automatic selection, working sets
        # beyond it (far past anything the dense local masks are built
        # for) fall back to the from-scratch oracle loop; a *forced*
        # kernel raises the typed capacity error from the constructor
        # instead of silently degrading.
        self._kernel = None
        if use_kernel and (
            use_incremental_kernel or len(survivors) <= KERNEL_MAX_VERTICES
        ):
            self._kernel = make_search_kernel(
                self._adjacency,
                params,
                self._distance_index,
                self.stats,
                backend=kernel_backend,
            )
            self.stats.kernel_backend = self._kernel.backend_label
            self.stats.kernel_dtype = self._kernel.dtype_name
        # Per-mask (size, γ, repr-rank) sort keys the top-k re-sorts reuse —
        # gamma_of_mask and the repr sort are pure functions of the mask.
        self._pattern_keys: Dict[int, Tuple] = {}

    # ------------------------------------------------------------------
    # public modes
    # ------------------------------------------------------------------
    @property
    def working_vertices(self) -> FrozenSet[Vertex]:
        """Vertices that survived the global minimum-degree pruning."""
        return frozenset(self._vertex_of)

    def enumerate_maximal(self) -> List[FrozenSet[Vertex]]:
        """Enumerate every maximal γ-quasi-clique of size ≥ ``min_size``.

        Maximality follows Definition 1: a satisfying vertex set with no
        satisfying proper superset.  The search emits every satisfying set
        that is not subsumed by a lookahead hit and a containment filter
        removes non-maximal emissions, which yields exactly the maximal
        sets (each satisfying set is contained in some emitted set).
        """
        emitted: List[int] = []
        self._run(mode="enumerate", emitted=emitted)
        return [self._to_frozenset(mask) for mask in _maximal_only(emitted)]

    def covered_vertices(
        self, targets: Optional[Iterable[Vertex]] = None
    ) -> FrozenSet[Vertex]:
        """Return the vertices covered by at least one quasi-clique.

        ``targets`` optionally limits the vertices whose coverage status is
        required; the search stops as soon as every target is covered and
        skips subtrees that cannot cover a new target.  The returned set
        contains exactly the covered vertices among the targets (all working
        vertices when ``targets`` is ``None``).
        """
        return self._to_frozenset(self.covered_mask(targets))

    def covered_mask(self, targets: Optional[Iterable[Vertex]] = None) -> int:
        """Like :meth:`covered_vertices` but returning a local-id mask.

        Exposed for callers that immediately re-index the result (the SCPM
        hot path); :meth:`covered_to_global` maps it back to graph space.
        """
        targets_mask = self._restriction_mask(targets)
        covered = [self._greedy_cover(targets_mask)]
        if targets_mask & ~covered[0]:
            self._run(mode="coverage", covered=covered, targets=targets_mask)
        return covered[0] & targets_mask

    def top_k(self, k: int) -> List[Tuple[FrozenSet[Vertex], float]]:
        """Return the top-``k`` patterns ranked by size then density (γ).

        The result is a list of ``(vertex_set, gamma)`` pairs, best first.
        Following Section 3.2.3, the minimum size threshold is raised as the
        result set fills up, pruning subtrees that cannot beat the current
        k-th best pattern.

        Guarantees: the largest pattern is exact, every returned set
        satisfies Definition 1's degree/size condition, and the results are
        pairwise incomparable.  Because the pruning threshold is driven by
        the *current* pattern set — which can momentarily contain
        non-maximal candidates, exactly as in the paper's rule — patterns
        ranked 2..k may occasionally be larger than the true k-th maximal
        pattern would allow smaller ones to appear; in practice this only
        shows up on adversarial tiny graphs (see the property tests).
        """
        if k < 1:
            raise ParameterError(f"k must be >= 1, got {k}")
        current_top: List[int] = []
        # Seed the result set with greedily found quasi-cliques so the dynamic
        # size threshold of Section 3.2.3 starts pruning immediately.
        for seed in self._greedy_satisfying_sets(self._universe):
            self._record(seed, "topk", current_top, None, k)
        self._run(mode="topk", emitted=current_top, k=k)
        ranked = sorted(current_top, key=self._pattern_sort_key)
        # The cached key already carries -γ; reuse it instead of another
        # gamma_of_mask sweep per returned pattern.
        return [
            (self._to_frozenset(mask), -self._pattern_sort_key(mask)[1])
            for mask in ranked[:k]
        ]

    # ------------------------------------------------------------------
    # conversions
    # ------------------------------------------------------------------
    def _to_frozenset(self, mask: int) -> FrozenSet[Vertex]:
        table = self._vertex_of
        return frozenset(table[i] for i in iter_bits(mask))

    def covered_to_global(self, mask: int, index):
        """Map a local-id mask into ``index``'s native global representation."""
        id_of = index.indexer.id_of
        table = self._vertex_of
        return index.native_from_ids(id_of(table[i]) for i in iter_bits(mask))

    def _restriction_mask(self, targets: Optional[Iterable[Vertex]]) -> int:
        if targets is None:
            return self._universe
        id_of = self._id_of
        mask = 0
        for vertex in targets:
            index = id_of.get(vertex)
            if index is not None:
                mask |= 1 << index
        return mask

    # ------------------------------------------------------------------
    # greedy coverage seed
    # ------------------------------------------------------------------
    def _greedy_satisfying_sets(self, targets: int) -> List[int]:
        """Cheap sound pre-pass that finds obvious quasi-cliques around dense vertices.

        For each still-unvisited target (densest first) the closed
        neighbourhood is shrunk greedily — dropping the weakest vertex while
        the γ degree condition fails — and, whenever a satisfying set
        remains, it is recorded.  Only verified satisfying sets are returned,
        so the pre-pass never over-reports; the exact search that follows
        settles everything else.  In dense planted communities this removes
        almost all the enumeration work.
        """
        adjacency = self._adjacency
        params = self.params
        found: List[int] = []
        seen = 0
        order = sorted(iter_bits(targets), key=lambda i: -adjacency[i].bit_count())
        for vertex in order:
            if (seen >> vertex) & 1:
                continue
            candidate = adjacency[vertex] | (1 << vertex)
            while candidate.bit_count() >= params.min_size:
                if satisfies_degree_condition_mask(adjacency, candidate, params):
                    found.append(candidate)
                    seen |= candidate
                    break
                weakest = min(
                    iter_bits(candidate & ~(1 << vertex)),
                    key=lambda v: ((adjacency[v] & candidate).bit_count(), v),
                )
                candidate &= ~(1 << weakest)
        return found

    def _greedy_cover(self, targets: int) -> int:
        """Mask covered by the greedy pre-pass (see ``_greedy_satisfying_sets``)."""
        covered = 0
        for satisfying in self._greedy_satisfying_sets(targets):
            self.stats.satisfying_sets_found += 1
            covered |= satisfying
        return covered

    # ------------------------------------------------------------------
    # engine
    # ------------------------------------------------------------------
    def _run(
        self,
        mode: str,
        emitted: Optional[List[int]] = None,
        covered: Optional[List[int]] = None,
        targets: int = 0,
        k: int = 0,
    ) -> None:
        """Drive the set-enumeration search in the requested ``mode``."""
        if not self._universe:
            return
        if self._kernel is not None:
            self._run_kernel(mode, emitted, covered, targets, k)
        else:
            self._run_oracle(mode, emitted, covered, targets, k)

    def _run_kernel(
        self,
        mode: str,
        emitted: Optional[List[int]],
        covered: Optional[List[int]],
        targets: int,
        k: int,
    ) -> None:
        """Set-enumeration loop on the incremental-counter kernel.

        Same traversal, same pruning decisions and same emitted sets as
        :meth:`_run_oracle` — every rule is evaluated from the node's
        ``indeg_ext`` lane vector instead of from-scratch mask sweeps
        (see :mod:`repro.quasiclique.kernel` for the invariants).

        One reordering on top of the counters: the cover and top-k size
        rules are probed *before* candidate restriction, on the
        unrestricted union.  Restriction only shrinks the union, so a
        node failing the early probe provably fails the exact post-
        restriction check too — the pruned set, the traversal and every
        statistic stay byte-identical to the oracle, but the ~90 % of
        coverage nodes that die here never pay for the restriction.
        """
        kernel = self._kernel
        frontier: deque = deque()
        frontier.append(kernel.root())

        while frontier:
            node = frontier.popleft() if self.order == BFS else frontier.pop()
            self.stats.nodes_expanded += 1
            if self.node_budget is not None and self.stats.nodes_expanded > self.node_budget:
                raise SearchBudgetExceeded(
                    f"expanded more than {self.node_budget} candidate quasi-cliques"
                )

            members_mask = node.members_mask
            if mode == "coverage":
                assert covered is not None
                covered_mask = covered[0]
                if not targets & ~covered_mask:
                    return
                union = members_mask | node.candidates
                if not union & ~covered_mask or not union & targets & ~covered_mask:
                    self.stats.pruned_covered += 1
                    continue
            elif mode == "topk" and emitted is not None and len(emitted) >= k:
                smallest_top = min(pattern.bit_count() for pattern in emitted)
                if (members_mask | node.candidates).bit_count() < smallest_top:
                    self.stats.pruned_by_size += 1
                    continue

            kernel.restrict(node)
            candidates = node.candidates

            if mode == "coverage":
                union = members_mask | candidates
                if not union & ~covered_mask or not union & targets & ~covered_mask:
                    self.stats.pruned_covered += 1
                    continue

            if mode == "topk" and emitted is not None and len(emitted) >= k:
                smallest_top = min(pattern.bit_count() for pattern in emitted)
                if (members_mask | candidates).bit_count() < smallest_top:
                    self.stats.pruned_by_size += 1
                    continue

            if kernel.is_hopeless(node):
                self.stats.pruned_hopeless += 1
                continue

            if candidates and kernel.union_satisfies(node):
                # Lookahead: X ∪ candExts(X) is itself a quasi-clique — it
                # subsumes every satisfying set of this subtree.
                self.stats.lookahead_hits += 1
                self._record(members_mask | candidates, mode, emitted, covered, k)
                continue

            if kernel.members_satisfy(node):
                self._record(members_mask, mode, emitted, covered, k)

            if not candidates:
                continue
            children = kernel.children(node)
            if self.order == DFS:
                # push in reverse so the smallest-ranked extension is explored first
                children.reverse()
            frontier.extend(children)

    def _run_oracle(
        self,
        mode: str,
        emitted: Optional[List[int]],
        covered: Optional[List[int]],
        targets: int,
        k: int,
    ) -> None:
        """Historical from-scratch loop — the kernel's differential oracle."""
        params = self.params
        adjacency = self._adjacency
        frontier: deque = deque()
        frontier.append(_Node(members=(), members_mask=0, candidates=self._universe))

        while frontier:
            node = frontier.popleft() if self.order == BFS else frontier.pop()
            self.stats.nodes_expanded += 1
            if self.node_budget is not None and self.stats.nodes_expanded > self.node_budget:
                raise SearchBudgetExceeded(
                    f"expanded more than {self.node_budget} candidate quasi-cliques"
                )

            members_mask = node.members_mask
            candidates = restrict_candidates_masks(
                adjacency,
                node.members,
                members_mask,
                node.candidates,
                params,
                self._distance_index,
            )

            if mode == "coverage":
                assert covered is not None
                covered_mask = covered[0]
                if not targets & ~covered_mask:
                    return
                union = members_mask | candidates
                if not union & ~covered_mask or not union & targets & ~covered_mask:
                    self.stats.pruned_covered += 1
                    continue

            if mode == "topk" and emitted is not None and len(emitted) >= k:
                smallest_top = min(pattern.bit_count() for pattern in emitted)
                if (members_mask | candidates).bit_count() < smallest_top:
                    self.stats.pruned_by_size += 1
                    continue

            if subtree_is_hopeless_masks(adjacency, members_mask, candidates, params):
                self.stats.pruned_hopeless += 1
                continue

            union = members_mask | candidates
            if candidates and satisfies_degree_condition_mask(adjacency, union, params):
                # Lookahead: X ∪ candExts(X) is itself a quasi-clique — it
                # subsumes every satisfying set of this subtree.
                self.stats.lookahead_hits += 1
                self._record(union, mode, emitted, covered, k)
                continue

            if members_mask.bit_count() >= params.min_size and (
                satisfies_degree_condition_mask(adjacency, members_mask, params)
            ):
                self._record(members_mask, mode, emitted, covered, k)

            if not candidates:
                continue
            # Ascending bit position == ascending rank: the relabelling in
            # __init__ makes the per-node candidate sort of the original
            # implementation free.
            children: List[_Node] = []
            rest = candidates
            for vertex in iter_bits(candidates):
                rest &= ~(1 << vertex)
                children.append(
                    _Node(
                        members=node.members + (vertex,),
                        members_mask=members_mask | (1 << vertex),
                        candidates=rest,
                    )
                )
            if self.order == DFS:
                # push in reverse so the smallest-ranked extension is explored first
                children.reverse()
            frontier.extend(children)

    def _record(
        self,
        vertex_mask: int,
        mode: str,
        emitted: Optional[List[int]],
        covered: Optional[List[int]],
        k: int,
    ) -> None:
        """Register a satisfying vertex set according to the search mode."""
        self.stats.satisfying_sets_found += 1
        if mode == "coverage":
            assert covered is not None
            covered[0] |= vertex_mask
            return
        assert emitted is not None
        if mode == "enumerate":
            emitted.append(vertex_mask)
            return
        # top-k mode: keep only the current best, containment-filtered, so the
        # dynamic size threshold reflects k *distinct* candidate patterns.
        if any(vertex_mask & ~existing == 0 for existing in emitted):
            return
        emitted[:] = [
            existing
            for existing in emitted
            if not (existing != vertex_mask and existing & ~vertex_mask == 0)
        ]
        emitted.append(vertex_mask)
        # Tie-break on vertex reprs (not raw mask order) so the k retained
        # patterns match the naive baseline's ranking when (size, γ) tie.
        # Keys are cached per mask: the re-sort on every insertion would
        # otherwise recompute gamma_of_mask and the repr sort for every
        # retained pattern each time.
        emitted.sort(key=self._pattern_sort_key)
        del emitted[k:]

    def _pattern_sort_key(self, vertex_mask: int) -> Tuple:
        """Cached ``(-size, -γ, repr-ranked vertices)`` ranking key."""
        key = self._pattern_keys.get(vertex_mask)
        if key is None:
            key = (
                -vertex_mask.bit_count(),
                -gamma_of_mask(self._adjacency, vertex_mask),
                sorted(map(repr, self._to_frozenset(vertex_mask))),
            )
            self._pattern_keys[vertex_mask] = key
        return key


def _maximal_only(masks: Sequence[int]) -> List[int]:
    """Filter a collection of vertex-set masks down to the inclusion-maximal ones."""
    unique = list(dict.fromkeys(masks))
    unique.sort(key=int.bit_count, reverse=True)
    maximal: List[int] = []
    for candidate in unique:
        if not any(
            candidate != other and candidate & ~other == 0 for other in maximal
        ):
            maximal.append(candidate)
    return maximal


# ----------------------------------------------------------------------
# convenience functions
# ----------------------------------------------------------------------
def find_quasi_cliques(
    graph: AttributedGraph,
    gamma: float,
    min_size: int,
    order: str = DFS,
    vertices: VertexRestriction = None,
    engine: str = "auto",
) -> List[FrozenSet[Vertex]]:
    """Enumerate the maximal γ-quasi-cliques of ``graph``.

    Examples
    --------
    >>> from repro.datasets import paper_example_graph
    >>> cliques = find_quasi_cliques(paper_example_graph(), gamma=0.6, min_size=4)
    >>> sorted(map(len, cliques))
    [4, 4, 4, 4, 6]
    """
    params = QuasiCliqueParams(gamma=gamma, min_size=min_size)
    search = QuasiCliqueSearch(
        graph, params, vertices=vertices, order=order, engine=engine
    )
    return search.enumerate_maximal()


def vertices_in_quasi_cliques(
    graph: AttributedGraph,
    gamma: float,
    min_size: int,
    order: str = DFS,
    vertices: VertexRestriction = None,
    targets: Optional[Iterable[Vertex]] = None,
    engine: str = "auto",
) -> FrozenSet[Vertex]:
    """Return the set ``K`` of vertices belonging to at least one quasi-clique."""
    params = QuasiCliqueParams(gamma=gamma, min_size=min_size)
    search = QuasiCliqueSearch(
        graph, params, vertices=vertices, order=order, engine=engine
    )
    return search.covered_vertices(targets=targets)


def top_k_quasi_cliques(
    graph: AttributedGraph,
    gamma: float,
    min_size: int,
    k: int,
    order: str = DFS,
    vertices: VertexRestriction = None,
    engine: str = "auto",
) -> List[Tuple[FrozenSet[Vertex], float]]:
    """Return the top-``k`` quasi-cliques of ``graph`` by size then density."""
    params = QuasiCliqueParams(gamma=gamma, min_size=min_size)
    search = QuasiCliqueSearch(
        graph, params, vertices=vertices, order=order, engine=engine
    )
    return search.top_k(k)

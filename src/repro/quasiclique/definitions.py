"""Quasi-clique definition and parameter objects (Definition 1 of the paper).

A γ-quasi-clique of minimum size ``min_size`` is a maximal vertex set ``Q``
such that every vertex of ``Q`` has at least ``ceil(γ · (|Q| - 1))``
neighbours inside ``Q`` and ``|Q| ≥ min_size``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import AbstractSet, Dict, Hashable, Iterable, Mapping, Sequence, Set

from repro.errors import ParameterError
from repro.graph.vertexset import iter_bits

Vertex = Hashable
Adjacency = Mapping[Vertex, AbstractSet[Vertex]]


@dataclass(frozen=True)
class QuasiCliqueParams:
    """Quasi-clique parameters ``(γ_min, min_size)``.

    Attributes
    ----------
    gamma:
        Minimum density threshold ``γ_min`` with ``0 < γ ≤ 1``.  ``γ = 1``
        corresponds to ordinary cliques.
    min_size:
        Minimum number of vertices in a quasi-clique (≥ 2).
    """

    gamma: float
    min_size: int

    def __post_init__(self) -> None:
        if not 0.0 < self.gamma <= 1.0:
            raise ParameterError(f"gamma must be in (0, 1], got {self.gamma}")
        if self.min_size < 2:
            raise ParameterError(f"min_size must be >= 2, got {self.min_size}")

    def degree_threshold(self, size: int) -> int:
        """Return ``ceil(γ · (size - 1))`` — the per-vertex degree requirement."""
        if size <= 1:
            return 0
        # round to avoid float artefacts such as 0.6 * 5 = 2.9999999999999996
        return int(math.ceil(round(self.gamma * (size - 1), 9)))

    @property
    def base_degree_threshold(self) -> int:
        """Degree needed to belong to *any* quasi-clique: ``ceil(γ(min_size-1))``."""
        return self.degree_threshold(self.min_size)

    @property
    def distance_bound(self) -> int:
        """Upper bound on pairwise distance inside a quasi-clique.

        ``1`` for cliques (γ = 1), ``2`` for γ ≥ 0.5 (a classical consequence
        of the minimum-degree condition), ``0`` meaning "no usable bound"
        otherwise.
        """
        if self.gamma >= 1.0:
            return 1
        if self.gamma >= 0.5:
            return 2
        return 0


def restricted_adjacency(
    adjacency: Adjacency, vertices: Iterable[Vertex]
) -> Dict[Vertex, Set[Vertex]]:
    """Restrict an adjacency mapping to a vertex subset (induced subgraph)."""
    keep = set(vertices)
    return {v: set(adjacency[v]) & keep for v in keep}


def satisfies_degree_condition(
    adjacency: Adjacency, vertex_set: AbstractSet[Vertex], params: QuasiCliqueParams
) -> bool:
    """Return ``True`` when ``vertex_set`` meets the γ degree condition.

    The size constraint ``|Q| ≥ min_size`` is part of the check.  Maximality
    is *not* checked here — see :func:`repro.quasiclique.search` for that.
    """
    size = len(vertex_set)
    if size < params.min_size:
        return False
    threshold = params.degree_threshold(size)
    for vertex in vertex_set:
        if len(adjacency[vertex] & vertex_set) < threshold:
            return False
    return True


def satisfies_degree_condition_mask(
    adjacency_masks: Sequence[int], set_mask: int, params: QuasiCliqueParams
) -> bool:
    """Bitmask twin of :func:`satisfies_degree_condition`.

    ``adjacency_masks`` is indexed by dense vertex id and ``set_mask`` is the
    candidate vertex set; both live in the same id space (see
    :mod:`repro.graph.vertexset`).
    """
    size = set_mask.bit_count()
    if size < params.min_size:
        return False
    threshold = params.degree_threshold(size)
    for vertex in iter_bits(set_mask):
        if (adjacency_masks[vertex] & set_mask).bit_count() < threshold:
            return False
    return True


def gamma_of_mask(adjacency_masks: Sequence[int], set_mask: int) -> float:
    """Bitmask twin of :func:`gamma_of`."""
    size = set_mask.bit_count()
    if size < 2:
        return 0.0
    min_degree = min(
        (adjacency_masks[v] & set_mask).bit_count() for v in iter_bits(set_mask)
    )
    return min_degree / (size - 1)


def gamma_of(adjacency: Adjacency, vertex_set: AbstractSet[Vertex]) -> float:
    """Return the largest γ for which ``vertex_set`` satisfies the condition.

    This is ``min_v deg_Q(v) / (|Q| - 1)`` and is the "density" column (γ)
    reported in the paper's Table 1.
    """
    size = len(vertex_set)
    if size < 2:
        return 0.0
    min_degree = min(len(adjacency[v] & vertex_set) for v in vertex_set)
    return min_degree / (size - 1)

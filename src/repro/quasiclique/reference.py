"""Brute-force reference implementations used as test oracles.

These functions enumerate the full power set of the working vertices, so
they are only suitable for very small graphs (≲ 18 vertices).  They provide
the ground truth that the pruned search engine and the SCPM pipeline are
checked against in the unit and property-based tests.
"""

from __future__ import annotations

from itertools import combinations
from typing import Dict, FrozenSet, Hashable, Iterable, List, Optional, Set

from repro.errors import ParameterError
from repro.graph.attributed_graph import AttributedGraph
from repro.quasiclique.definitions import (
    QuasiCliqueParams,
    satisfies_degree_condition,
)

Vertex = Hashable

_MAX_BRUTE_FORCE_VERTICES = 20


def _working_adjacency(
    graph: AttributedGraph, vertices: Optional[Iterable[Vertex]]
) -> Dict[Vertex, Set[Vertex]]:
    keep = set(graph.vertices()) if vertices is None else {
        v for v in vertices if graph.has_vertex(v)
    }
    if len(keep) > _MAX_BRUTE_FORCE_VERTICES:
        raise ParameterError(
            f"brute-force reference limited to {_MAX_BRUTE_FORCE_VERTICES} vertices, "
            f"got {len(keep)}"
        )
    return {v: set(graph.neighbor_set(v)) & keep for v in keep}


def brute_force_satisfying_sets(
    graph: AttributedGraph,
    params: QuasiCliqueParams,
    vertices: Optional[Iterable[Vertex]] = None,
) -> List[FrozenSet[Vertex]]:
    """Every vertex set meeting the γ degree condition with size ≥ min_size."""
    adjacency = _working_adjacency(graph, vertices)
    universe = sorted(adjacency, key=repr)
    found: List[FrozenSet[Vertex]] = []
    for size in range(params.min_size, len(universe) + 1):
        for subset in combinations(universe, size):
            candidate = frozenset(subset)
            if satisfies_degree_condition(adjacency, candidate, params):
                found.append(candidate)
    return found


def brute_force_maximal_quasi_cliques(
    graph: AttributedGraph,
    params: QuasiCliqueParams,
    vertices: Optional[Iterable[Vertex]] = None,
) -> List[FrozenSet[Vertex]]:
    """Maximal quasi-cliques per Definition 1 (no satisfying proper superset)."""
    satisfying = brute_force_satisfying_sets(graph, params, vertices)
    maximal = [
        candidate
        for candidate in satisfying
        if not any(candidate < other for other in satisfying)
    ]
    return sorted(maximal, key=lambda s: (-len(s), sorted(map(repr, s))))


def brute_force_covered_vertices(
    graph: AttributedGraph,
    params: QuasiCliqueParams,
    vertices: Optional[Iterable[Vertex]] = None,
) -> FrozenSet[Vertex]:
    """Vertices belonging to at least one satisfying set (the set ``K``)."""
    covered: Set[Vertex] = set()
    for satisfying in brute_force_satisfying_sets(graph, params, vertices):
        covered |= satisfying
    return frozenset(covered)


def brute_force_structural_correlation(
    graph: AttributedGraph,
    attribute_set: Iterable[Hashable],
    params: QuasiCliqueParams,
) -> float:
    """ε(S) computed entirely by brute force (oracle for the core layer)."""
    members = graph.vertices_with_all(attribute_set)
    if not members:
        return 0.0
    induced = graph.subgraph(members)
    covered = brute_force_covered_vertices(induced, params)
    return len(covered) / len(members)

"""Lattice-wide memoization of quasi-clique coverage results.

SCPM funnels every attribute set through the same operation: the
coverage-oriented quasi-clique search over the working vertex set
``V(S)`` (restricted by the Theorem-3 parent intersection).  Theorem 3
is also why identical working sets recur across the attribute lattice:
sibling extensions inherit their candidate vertices from the *parents'*
covered sets, so two different attribute sets frequently induce the very
same working set — and the search would silently repeat the identical
enumeration.  The :class:`~repro.correlation.null_models.SimulationNullModel`
repeats the pattern per sampled support (clamped supports near |V| draw
literally identical samples every run).

:class:`CoverageMemo` caches those searches.  A key is
``(working-set native, γ, min_size)`` — the engine-native working set
(an int mask on the dense engine, a hashable
:class:`~repro.graph.sparseset.SparseBitset` on the sparse one), which
is *exact*: no fingerprint collisions, no false hits.  The value is the
covered set as the same kind of indexer-free native, so an entry can
cross process boundaries inside the parallel transfer payload and be
re-wrapped against any worker's index.  The coverage result is a pure
function of the key (the covered set of a vertex-restricted search does
not depend on traversal order), so a hit returns byte-identical output
to running the search — the memo-on/off differential suite enforces it.

Two layers keep parallel runs deterministic:

* ``shared`` — a read-only snapshot, typically taken with
  :meth:`snapshot` at fan-out time and shipped once per worker inside
  the :class:`~repro.correlation.scpm._BranchPayload`;
* a local layer that accumulates new results.  Workers reset it at
  every task boundary (:meth:`reset_local`), making each task's hits a
  pure function of ``(payload, task args)`` — the scheduler's
  keyed-merge protocol then folds the per-task hit/miss counts back
  deterministically, independent of stealing order.

``hits``/``misses`` count lookups on this instance; mining-level totals
are accumulated into
:class:`~repro.correlation.patterns.MiningCounters` by the callers.
"""

from __future__ import annotations

from typing import Any, Dict, Hashable, Optional, Tuple

MemoKey = Tuple[Hashable, float, int]


class CoverageMemo:
    """Two-layer cache of coverage-search results keyed by working set.

    Parameters
    ----------
    shared:
        Optional read-only base layer (a mapping produced by
        :meth:`snapshot` of another memo).  Never written to; lets a
        worker process consult the parent's results while keeping its
        own additions local.

    Examples
    --------
    >>> memo = CoverageMemo()
    >>> key = memo.key(0b1011, gamma=0.6, min_size=2)
    >>> memo.get(key) is None
    True
    >>> memo.put(key, 0b0011)
    >>> memo.get(key)
    3
    >>> (memo.hits, memo.misses)
    (1, 1)
    """

    __slots__ = ("_shared", "_local", "hits", "misses")

    def __init__(self, shared: Optional[Dict[MemoKey, Any]] = None) -> None:
        self._shared: Dict[MemoKey, Any] = shared if shared is not None else {}
        self._local: Dict[MemoKey, Any] = {}
        self.hits = 0
        self.misses = 0

    @staticmethod
    def key(working_native: Hashable, gamma: float, min_size: int) -> MemoKey:
        """Build the cache key for one coverage search.

        ``working_native`` is the engine-native working set — hashable
        and equality-exact for both engines, so the key never aliases
        two different searches.  γ and ``min_size`` pin the quasi-clique
        definition the covered set answers for.
        """
        return (working_native, gamma, min_size)

    def get(self, key: MemoKey) -> Any:
        """Return the cached covered native, or ``None`` (counted)."""
        value = self._local.get(key)
        if value is None:
            value = self._shared.get(key)
        if value is None:
            self.misses += 1
            return None
        self.hits += 1
        return value

    def put(self, key: MemoKey, covered_native: Any) -> None:
        """Store a computed covered set in the local layer."""
        self._local[key] = covered_native

    def snapshot(self) -> Dict[MemoKey, Any]:
        """One read-only dict of everything known — shared layer included.

        This is what rides the parallel transfer payload: workers build
        their own :class:`CoverageMemo` around it and keep later results
        local.
        """
        merged = dict(self._shared)
        merged.update(self._local)
        return merged

    def evict_where(self, predicate) -> int:
        """Drop every entry whose key matches ``predicate``; return count.

        The invalidation hook of delta re-evaluation
        (:func:`repro.quasiclique.delta.invalidate_memo`): after a graph
        edit, entries whose working set intersects a touched chunk are
        stale — their covered sets answer for the pre-edit subgraph —
        while all other entries remain exact (their induced subgraphs are
        bit-for-bit unchanged).  Both layers are scanned; the shared
        layer is mutated in place, so only the memo's owner should call
        this (worker memos built around a snapshot share the dict).
        """
        removed = 0
        for layer in (self._shared, self._local):
            doomed = [key for key in layer if predicate(key)]
            for key in doomed:
                del layer[key]
            removed += len(doomed)
        return removed

    def reset_local(self) -> None:
        """Drop the local layer (task-boundary determinism hook).

        Hit/miss counters are *not* reset — callers account for them as
        deltas around each lookup.
        """
        self._local.clear()

    def __len__(self) -> int:
        return len(self._shared) + len(self._local)

    def __repr__(self) -> str:
        return (
            f"CoverageMemo(entries={len(self)}, hits={self.hits}, "
            f"misses={self.misses})"
        )


__all__ = ["CoverageMemo", "MemoKey"]

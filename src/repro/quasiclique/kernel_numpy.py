"""Numpy-vectorized search-kernel backend (``"numpy"``).

The big-int :class:`~repro.quasiclique.kernel.SearchKernel` packs the
``indeg_ext`` counter table into 16-bit lanes of one arbitrary-precision
integer and runs every rule as a handful of big-int operations.  CPython
executes those operations as scalar 30-bit-digit loops with carry
propagation; this backend stores the same counter table as a numpy array —
one unsigned lane per working vertex — so the identical rules run through
numpy's SIMD bulk kernels instead:

* vertex retirement (the sibling sweep of :meth:`NumpySearchKernel.children`
  and the candidate drops of :meth:`NumpySearchKernel._remove`) is a
  vectorized neighbourhood subtraction — one running sum over the retired
  rows of the 0/1 adjacency matrix produces *every* sibling's counter
  vector in one batch, where the big-int kernel subtracts per sibling;
* the threshold rules (candidate filter, hopelessness, lookahead) are one
  vectorized compare ``ext_vec < required`` plus a boolean mask-reduce,
  replacing the SWAR borrow trick.

Lane-width specialisation is dtype selection: working sets of at most
:data:`~repro.quasiclique.kernel.NUMPY_UINT8_MAX_VERTICES` vertices use
``uint8`` lanes (counters are bounded by n-1, so 8 bits suffice with
headroom), larger ones ``uint16`` up to the same 32767-vertex bound as the
big-int lanes — both backends refuse exactly the same working sets, with a
typed :class:`~repro.errors.KernelCapacityError`.

The method surface, node life cycle, traversal order, counter accounting
and pruning fixpoints replicate :class:`SearchKernel` exactly — the big-int
path is the differential oracle, and the fuzz grids assert byte-identical
mining output and search statistics across backends.  The test seam is
shared too: ``SearchKernel.debug_hook`` (when set) observes this backend's
nodes after every :meth:`restrict`, and :meth:`unpack` /
:meth:`recompute_counters` provide the same invariant probes.

Node state differs from the big-int node only in representation:
``ext_vec`` is an ``(n,)`` array in the selected dtype; everything else
(member tuples, int masks) is byte-for-byte the big-int node's, so the
search loop, the distance rule and the memo keys stay representation-blind.
Boolean membership arrays are derived on demand from the int masks (one
``unpackbits`` — microseconds at the lane bound) instead of being carried
on nodes; profiling showed maintaining them in lockstep cost more than
rebuilding them at the handful of vectorized decision points.  Counter
arrays are never mutated across nodes: a child either owns a fresh row of
the batch-computed sweep matrix or (the first child) aliases its parent's
vector, which is dead by then — the same zero-copy sharing discipline as
the immutable big-int lane vectors.

Import of numpy is guarded (:data:`HAVE_NUMPY`): the module always
imports, and :func:`repro.quasiclique.kernel.make_search_kernel` falls
back to (or refuses with a typed error, for explicit requests) the big-int
backend when numpy is missing.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

try:  # pragma: no cover - exercised only on numpy-less installs
    import numpy as np

    HAVE_NUMPY = True
except ImportError:  # pragma: no cover
    np = None  # type: ignore[assignment]
    HAVE_NUMPY = False

from repro.errors import KernelCapacityError
from repro.quasiclique.definitions import QuasiCliqueParams
from repro.quasiclique.kernel import (
    NUMPY_BACKEND,
    NUMPY_UINT8_MAX_VERTICES,
    NUMPY_UINT16_MAX_VERTICES,
    SearchKernel,
    _SMALL_SET,
    threshold_table,
)
from repro.quasiclique.pruning import MaskDistanceIndex

#: Sibling batches with at most this many *cells* (siblings × lanes) use
#: ``np.cumsum`` for the retirement sweep; larger batches run an explicit
#: row loop — one in-place SIMD row add per retired sibling — because
#: ``add.accumulate`` along axis 0 degenerates to a scalar per-column loop
#: (measured ~15x slower at 3000x3000 lanes).
_CUMSUM_CELLS_MAX = 1 << 15


class NumpyKernelNode:
    """One search-tree node with its counters in a numpy lane array.

    ``members``/``members_mask``/``candidates`` are exactly the big-int
    node's fields (tuples and int masks — the search loop is agnostic);
    ``ext_vec`` holds ``|N(v) ∩ scope|`` for every working vertex in the
    kernel's dtype.
    """

    __slots__ = ("members", "members_mask", "candidates", "ext_vec")

    def __init__(
        self,
        members: Tuple[int, ...],
        members_mask: int,
        candidates: int,
        ext_vec,
    ) -> None:
        self.members = members
        self.members_mask = members_mask
        self.candidates = candidates
        self.ext_vec = ext_vec


class NumpySearchKernel:
    """Vectorized twin of :class:`~repro.quasiclique.kernel.SearchKernel`.

    Same constructor signature, same method surface, same statistics —
    see the module docstring for the representation differences.  One
    kernel serves one search; ``stats.counter_updates`` accounts one unit
    per neighbour lane touched, exactly like the big-int backend, so the
    instrumentation the benchmarks report stays comparable.
    """

    __slots__ = (
        "adjacency",
        "params",
        "distance_index",
        "stats",
        "dtype_name",
        "_thresholds",
        "_dtype",
        "_n",
        "_spread",
        "_degrees",
        "_root_ext",
    )

    backend_label = NUMPY_BACKEND

    def __init__(
        self,
        adjacency: Sequence[int],
        params: QuasiCliqueParams,
        distance_index: Optional[MaskDistanceIndex],
        stats,
    ) -> None:
        n = len(adjacency)
        if n > NUMPY_UINT16_MAX_VERTICES:
            raise KernelCapacityError(n, NUMPY_UINT16_MAX_VERTICES, NUMPY_BACKEND)
        self.adjacency = adjacency
        self.params = params
        self.distance_index = distance_index
        self.stats = stats
        self._n = n
        self._thresholds = threshold_table(params, max(n + 1, params.min_size))
        if n <= NUMPY_UINT8_MAX_VERTICES:
            self._dtype = np.uint8
            self.dtype_name = "uint8"
        else:
            self._dtype = np.uint16
            self.dtype_name = "uint16"
        self._degrees = [mask.bit_count() for mask in adjacency]
        if n:
            nbytes = (n + 7) // 8
            buf = b"".join(mask.to_bytes(nbytes, "little") for mask in adjacency)
            packed = np.frombuffer(buf, dtype=np.uint8).reshape(n, nbytes)
            bits = np.unpackbits(packed, axis=1, count=n, bitorder="little")
            # 0/1 adjacency rows in the lane dtype: row u is SPREAD[u].
            self._spread = np.ascontiguousarray(bits, dtype=self._dtype)
        else:
            self._spread = np.zeros((0, 0), dtype=self._dtype)
        self._root_ext = np.array(self._degrees, dtype=self._dtype)

    # ------------------------------------------------------------------
    # mask ↔ array conversion
    # ------------------------------------------------------------------
    def _mask_to_bool(self, mask: int):
        """Boolean membership array of an int bit mask (ascending ids)."""
        n = self._n
        raw = mask.to_bytes((n + 7) // 8, "little")
        return np.unpackbits(
            np.frombuffer(raw, dtype=np.uint8), count=n, bitorder="little"
        ).view(np.bool_)

    @staticmethod
    def _bool_to_mask(flags) -> int:
        """Int bit mask of a boolean membership array."""
        return int.from_bytes(
            np.packbits(flags, bitorder="little").tobytes(), "little"
        )

    # ------------------------------------------------------------------
    # node construction
    # ------------------------------------------------------------------
    def root(self) -> NumpyKernelNode:
        """The root node: empty X, every vertex a candidate."""
        n = self._n
        self.stats.counter_updates += n
        return NumpyKernelNode((), 0, (1 << n) - 1, self._root_ext.copy())

    def children(self, node: NumpyKernelNode) -> List[NumpyKernelNode]:
        """Expand a node into its set-enumeration children.

        Identical tree to the big-int kernel (ascending local id order,
        candidates above the extension).  All sibling sweep vectors come
        from **one** batched computation — a running sum over the retired
        candidates' adjacency rows, subtracted from the parent vector —
        so child ``i`` owns row ``i-1`` of the result, and child 0 aliases
        the parent's vector, which is never used again.  Values stay
        ≤ n-1 throughout, inside the lane dtype, so no accumulator
        widening is needed.
        """
        idx = np.flatnonzero(self._mask_to_bool(node.candidates))
        k = int(idx.size)
        if not k:
            return []
        ext_mat = None
        if k > 1:
            rows = k - 1
            if rows * self._n <= _CUMSUM_CELLS_MAX:
                cum = np.cumsum(self._spread[idx[:-1]], axis=0, dtype=self._dtype)
                ext_mat = node.ext_vec[None, :] - cum
            else:
                # ext_mat[i] = parent_ext - Σ_{j≤i} SPREAD[idx[j]]: seed
                # every row with (parent_ext - its own retired row), then
                # one in-place SIMD row-add of the previous row minus the
                # double-counted parent vector.
                ext_mat = np.subtract(node.ext_vec[None, :], self._spread[idx[:-1]])
                parent = node.ext_vec
                for i in range(1, rows):
                    row = ext_mat[i]
                    row += ext_mat[i - 1]
                    row -= parent

        members = node.members
        members_mask = node.members_mask
        degrees = self._degrees
        rest = node.candidates
        updates = 0
        children: List[NumpyKernelNode] = []
        for i, u in enumerate(idx.tolist()):
            low = 1 << u
            rest ^= low
            children.append(
                NumpyKernelNode(
                    members + (u,),
                    members_mask | low,
                    rest,
                    node.ext_vec if i == 0 else ext_mat[i - 1],
                )
            )
            if rest:
                # u leaves the scope of every higher-ranked sibling
                updates += degrees[u]
        self.stats.counter_updates += updates
        return children

    # ------------------------------------------------------------------
    # pruning rules (vectorized forms — same fixpoints as the oracle)
    # ------------------------------------------------------------------
    def restrict(self, node: NumpyKernelNode) -> None:
        """Apply the candidate-level pruning rules to ``node`` in place.

        Same structure as the big-int :meth:`SearchKernel.restrict` —
        diameter rule, then the unique degree-filter fixpoint.  Each
        fixpoint round is one vectorized compare + mask over the candidate
        lanes; tiny candidate sets keep the identical masked-popcount
        short-cut (it is a pure function of the same counters).
        """
        candidates = node.candidates
        if candidates:
            distance_index = self.distance_index
            if distance_index is not None and distance_index.enabled and node.members:
                allowed = candidates & distance_index.reachable(node.members[-1])
                dropped = candidates & ~allowed
                if dropped:
                    self._remove(node, dropped)
                    candidates = allowed
            if candidates:
                required = self._thresholds[
                    max(self.params.min_size, len(node.members) + 1)
                ]
                adjacency = self.adjacency
                members_mask = node.members_mask
                while True:
                    dropped = 0
                    if candidates.bit_count() <= _SMALL_SET:
                        # few candidates: masked popcounts beat a lane op
                        scope = members_mask | candidates
                        scan = candidates
                        while scan:
                            low = scan & -scan
                            scan ^= low
                            c = low.bit_length() - 1
                            if (adjacency[c] & scope).bit_count() < required:
                                dropped |= low
                    else:
                        failing = self._mask_to_bool(candidates) & (
                            node.ext_vec < required
                        )
                        if failing.any():
                            dropped = self._bool_to_mask(failing)
                    if not dropped:
                        break
                    self._remove(node, dropped)
                    candidates &= ~dropped
                    if not candidates:
                        break
            node.candidates = candidates
        hook = SearchKernel.debug_hook
        if hook is not None:
            hook(self, node)

    def _remove(self, node: NumpyKernelNode, dropped: int) -> None:
        """Retire a candidate mask from the node's scope.

        One batched row-sum over the dropped vertices' adjacency rows
        replaces the big-int kernel's per-vertex ``SPREAD`` subtractions.
        The counter vector is replaced out of place: it may be a row view
        into a sibling sweep matrix, and no other node may observe the
        change.
        """
        degrees = self._degrees
        spread = self._spread
        if dropped & (dropped - 1) == 0:
            v = dropped.bit_length() - 1
            total = spread[v]
            updates = degrees[v]
        else:
            drop_idx = np.flatnonzero(self._mask_to_bool(dropped))
            total = spread[drop_idx].sum(axis=0, dtype=self._dtype)
            updates = sum(degrees[v] for v in drop_idx.tolist())
        node.ext_vec = node.ext_vec - total
        self.stats.counter_updates += updates

    def is_hopeless(self, node: NumpyKernelNode) -> bool:
        """Vectorized twin of :meth:`SearchKernel.is_hopeless`."""
        params = self.params
        members = node.members
        member_count = len(members)
        if not member_count:
            return node.candidates.bit_count() < params.min_size
        if member_count + node.candidates.bit_count() < params.min_size:
            return True
        required = self._thresholds[max(params.min_size, member_count)]
        if member_count <= _SMALL_SET:
            adjacency = self.adjacency
            scope = node.members_mask | node.candidates
            for member in members:
                if (adjacency[member] & scope).bit_count() < required:
                    return True
            return False
        return bool((node.ext_vec[list(members)] < required).any())

    def union_satisfies(self, node: NumpyKernelNode) -> bool:
        """Lookahead: does ``X ∪ candExts(X)`` meet the degree condition?"""
        candidate_count = node.candidates.bit_count()
        size = len(node.members) + candidate_count
        if size < self.params.min_size:
            return False
        required = self._thresholds[size]
        if size <= _SMALL_SET:
            adjacency = self.adjacency
            scope = node.members_mask | node.candidates
            scan = scope
            while scan:
                low = scan & -scan
                scan ^= low
                if (adjacency[low.bit_length() - 1] & scope).bit_count() < required:
                    return False
            return True
        scope_bool = self._mask_to_bool(node.members_mask | node.candidates)
        return not bool(((node.ext_vec < required) & scope_bool).any())

    def members_satisfy(self, node: NumpyKernelNode) -> bool:
        """Does ``X`` itself meet the γ degree/size condition?

        Identical to the big-int backend: |X| is small at the nodes that
        get this far, so per-member masked popcounts on the int adjacency
        beat any vector op.
        """
        members = node.members
        size = len(members)
        if size < self.params.min_size:
            return False
        required = self._thresholds[size]
        adjacency = self.adjacency
        members_mask = node.members_mask
        for member in members:
            if (adjacency[member] & members_mask).bit_count() < required:
                return False
        return True

    # ------------------------------------------------------------------
    # oracle recomputation (test seam)
    # ------------------------------------------------------------------
    def recompute_counters(self, node: NumpyKernelNode) -> List[int]:
        """From-scratch ``indeg_ext`` for every vertex of the working graph."""
        adjacency = self.adjacency
        scope = node.members_mask | node.candidates
        return [
            (adjacency[v] & scope).bit_count() for v in range(len(adjacency))
        ]

    def unpack(self, node: NumpyKernelNode) -> List[int]:
        """The node's live ``indeg_ext`` lane values, one per vertex."""
        return node.ext_vec.tolist()


__all__ = ["HAVE_NUMPY", "NumpyKernelNode", "NumpySearchKernel"]

"""Pruning rules for the quasi-clique set-enumeration search.

The rules follow Section 3.2.1/3.2.2 of the paper and the Quick algorithm
(Liu & Wong, PKDD 2008) it builds on.  Every rule removes only vertices or
subtrees that provably cannot contribute a vertex set satisfying the γ
degree condition with size ≥ ``min_size``; soundness of each rule is covered
by property-based tests against a brute-force reference miner.

Two groups of rules are implemented (the paper's terminology):

* **Vertex pruning** — iteratively drop vertices whose degree in the working
  graph is below ``ceil(γ (min_size - 1))``; they cannot belong to any
  quasi-clique (their degree inside any candidate set is even smaller).
* **Candidate quasi-clique pruning** — at a search node ``(X, cand)``,
  restrict ``cand`` and decide whether the whole subtree can be discarded,
  based on degree bounds within ``X ∪ cand`` and on the diameter bound
  implied by γ.
"""

from __future__ import annotations

from typing import (
    AbstractSet,
    Collection,
    Dict,
    Hashable,
    Iterable,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from repro.graph.vertexset import iter_bits
from repro.quasiclique.definitions import QuasiCliqueParams

Vertex = Hashable
Adjacency = Dict[Vertex, Set[Vertex]]
# Bitmask adjacency: ``masks[i]`` is the neighbour mask of dense vertex id i.
MaskAdjacency = Sequence[int]


def prune_low_degree_vertices(
    adjacency: Adjacency, params: QuasiCliqueParams
) -> Adjacency:
    """Iteratively remove vertices with degree < ``ceil(γ(min_size-1))``.

    Returns a new adjacency mapping restricted to the surviving vertices.
    No member of any vertex set that satisfies the degree condition is ever
    removed: all its neighbours inside the set survive with it, so its
    working degree never drops below the threshold.
    """
    threshold = params.base_degree_threshold
    working: Adjacency = {v: set(neighbors) for v, neighbors in adjacency.items()}
    queue: List[Vertex] = [v for v, neighbors in working.items() if len(neighbors) < threshold]
    removed: Set[Vertex] = set(queue)
    while queue:
        vertex = queue.pop()
        for neighbor in working[vertex]:
            neighbors = working[neighbor]
            neighbors.discard(vertex)
            if neighbor not in removed and len(neighbors) < threshold:
                removed.add(neighbor)
                queue.append(neighbor)
        working[vertex] = set()
    return {v: neighbors for v, neighbors in working.items() if v not in removed}


class DistanceIndex:
    """Lazy distance-≤ 2 neighbourhood index over a working adjacency.

    For γ ≥ 0.5 every pair of vertices of a quasi-clique is at distance at
    most 2 (at most 1 for γ = 1), so a candidate extension must lie inside
    the (closed) distance-bound neighbourhood of every vertex already in X.
    """

    def __init__(self, adjacency: Adjacency, distance_bound: int) -> None:
        self._adjacency = adjacency
        self._distance_bound = distance_bound
        self._cache: Dict[Vertex, Set[Vertex]] = {}

    @property
    def enabled(self) -> bool:
        """``True`` when the γ value yields a usable distance bound."""
        return self._distance_bound in (1, 2)

    def reachable(self, vertex: Vertex) -> Set[Vertex]:
        """Closed neighbourhood of ``vertex`` within the distance bound."""
        cached = self._cache.get(vertex)
        if cached is not None:
            return cached
        neighbors = self._adjacency[vertex]
        if self._distance_bound == 1:
            result = set(neighbors)
        else:
            result = set(neighbors)
            for neighbor in neighbors:
                result |= self._adjacency[neighbor]
        result.add(vertex)
        self._cache[vertex] = result
        return result

    def allowed_extensions(
        self, members: Iterable[Vertex], candidates: AbstractSet[Vertex]
    ) -> Set[Vertex]:
        """Return the candidates within the distance bound of every member."""
        allowed = set(candidates)
        for member in members:
            allowed &= self.reachable(member)
            if not allowed:
                break
        return allowed


def filter_candidates_by_degree(
    adjacency: Adjacency,
    members: AbstractSet[Vertex],
    candidates: Set[Vertex],
    params: QuasiCliqueParams,
) -> Set[Vertex]:
    """Drop candidate extensions that cannot reach the degree requirement.

    A candidate ``u`` added to any set ``Q`` in this subtree gives
    ``|Q| ≥ max(min_size, |X| + 1)`` and ``deg_Q(u) ≤ |N(u) ∩ (X ∪ cand)|``,
    so the latter must reach ``ceil(γ (max(min_size, |X|+1) - 1))``.
    The filter is applied to a fixpoint because removing one candidate can
    invalidate another.
    """
    required = params.degree_threshold(max(params.min_size, len(members) + 1))
    remaining = set(candidates)
    changed = True
    while changed:
        changed = False
        scope = members | remaining
        for candidate in list(remaining):
            if len(adjacency[candidate] & scope) < required:
                remaining.discard(candidate)
                changed = True
    return remaining


def subtree_is_hopeless(
    adjacency: Adjacency,
    members: AbstractSet[Vertex],
    candidates: AbstractSet[Vertex],
    params: QuasiCliqueParams,
) -> bool:
    """Return ``True`` when no satisfying set exists in the subtree.

    Checks that the subtree can still reach ``min_size`` and that every
    vertex already in X can reach the degree requirement of the *smallest*
    feasible final size using only vertices of ``X ∪ cand``.  Both are
    necessary conditions for any satisfying superset of X inside the
    subtree, so returning ``True`` never discards a valid quasi-clique.
    """
    if not members:
        return len(candidates) < params.min_size
    total = len(members) + len(candidates)
    if total < params.min_size:
        return True
    required = params.degree_threshold(max(params.min_size, len(members)))
    scope = members | candidates
    for member in members:
        if len(adjacency[member] & scope) < required:
            return True
    return False


def restrict_candidates(
    adjacency: Adjacency,
    members: AbstractSet[Vertex],
    candidates: Set[Vertex],
    params: QuasiCliqueParams,
    distance_index: Optional[DistanceIndex] = None,
) -> Set[Vertex]:
    """Apply every candidate-level pruning rule and return the reduced set."""
    reduced = set(candidates)
    if distance_index is not None and distance_index.enabled and members:
        reduced = distance_index.allowed_extensions(members, reduced)
    if reduced:
        reduced = filter_candidates_by_degree(adjacency, members, reduced, params)
    return reduced


# ----------------------------------------------------------------------
# bitmask twins — same rules over dense-id adjacency masks
# ----------------------------------------------------------------------
# The set-based functions above remain the readable specification (and the
# unit-test surface); the functions below are what the search engine's inner
# loop actually runs.  Vertex sets are int masks and a degree check is one
# ``&`` plus one popcount.


def prune_low_degree_masks(
    adjacency: Sequence[int], params: QuasiCliqueParams
) -> Tuple[int, List[int]]:
    """Bitmask twin of :func:`prune_low_degree_vertices`.

    Returns ``(alive_mask, masks)`` where ``alive_mask`` marks the surviving
    dense ids and ``masks`` is the adjacency restricted to the survivors
    (pruned entries are zeroed, not removed, so indexing stays dense).
    """
    threshold = params.base_degree_threshold
    working = list(adjacency)
    n = len(working)
    removed = 0
    queue: List[int] = []
    for vertex in range(n):
        if working[vertex].bit_count() < threshold:
            removed |= 1 << vertex
            queue.append(vertex)
    while queue:
        vertex = queue.pop()
        for neighbor in iter_bits(working[vertex]):
            mask = working[neighbor] & ~(1 << vertex)
            working[neighbor] = mask
            if not (removed >> neighbor) & 1 and mask.bit_count() < threshold:
                removed |= 1 << neighbor
                queue.append(neighbor)
        working[vertex] = 0
    alive = ((1 << n) - 1) & ~removed
    return alive, working


class MaskDistanceIndex:
    """Bitmask twin of :class:`DistanceIndex` (lazy, per-search cache)."""

    __slots__ = ("_adjacency", "_distance_bound", "_cache")

    def __init__(self, adjacency: Sequence[int], distance_bound: int) -> None:
        self._adjacency = adjacency
        self._distance_bound = distance_bound
        self._cache: Dict[int, int] = {}

    @property
    def enabled(self) -> bool:
        """``True`` when the γ value yields a usable distance bound."""
        return self._distance_bound in (1, 2)

    def reachable(self, vertex: int) -> int:
        """Closed neighbourhood mask of ``vertex`` within the bound."""
        cached = self._cache.get(vertex)
        if cached is not None:
            return cached
        neighbors = self._adjacency[vertex]
        result = neighbors
        if self._distance_bound != 1:
            for neighbor in iter_bits(neighbors):
                result |= self._adjacency[neighbor]
        result |= 1 << vertex
        self._cache[vertex] = result
        return result

    def allowed_extensions(self, members: Iterable[int], candidates: int) -> int:
        """Mask of candidates within the distance bound of every member."""
        allowed = candidates
        for member in members:
            allowed &= self.reachable(member)
            if not allowed:
                break
        return allowed


def filter_candidates_by_degree_masks(
    adjacency: Sequence[int],
    members_mask: int,
    candidates_mask: int,
    params: QuasiCliqueParams,
) -> int:
    """Bitmask twin of :func:`filter_candidates_by_degree` (fixpoint)."""
    required = params.degree_threshold(
        max(params.min_size, members_mask.bit_count() + 1)
    )
    remaining = candidates_mask
    changed = True
    while changed:
        changed = False
        scope = members_mask | remaining
        for candidate in iter_bits(remaining):
            if (adjacency[candidate] & scope).bit_count() < required:
                remaining &= ~(1 << candidate)
                changed = True
    return remaining


def subtree_is_hopeless_masks(
    adjacency: Sequence[int],
    members_mask: int,
    candidates_mask: int,
    params: QuasiCliqueParams,
) -> bool:
    """Bitmask twin of :func:`subtree_is_hopeless`."""
    member_count = members_mask.bit_count()
    if not member_count:
        return candidates_mask.bit_count() < params.min_size
    if member_count + candidates_mask.bit_count() < params.min_size:
        return True
    required = params.degree_threshold(max(params.min_size, member_count))
    scope = members_mask | candidates_mask
    for member in iter_bits(members_mask):
        if (adjacency[member] & scope).bit_count() < required:
            return True
    return False


def prune_low_degree_sparse(
    adjacency: Dict[int, Collection[int]], threshold: int
) -> List[int]:
    """Sparse twin of :func:`prune_low_degree_vertices` over chunked sets.

    ``adjacency`` maps a dense vertex id to its neighbour set *already
    restricted to the working vertices* — any sized, iterable container
    works; the sparse engine passes
    :class:`repro.graph.sparseset.SparseBitset` values.  Iteratively drops
    ids whose restricted degree is below ``threshold`` and returns the
    surviving ids in ascending order.

    The removal fixpoint is unique (the rule is monotone), so running this
    *before* materialising dense local masks and then re-running the dense
    :func:`prune_low_degree_masks` afterwards yields exactly the survivors
    and degrees a dense-only pipeline produces — the property the
    cross-engine differential tests rely on.
    """
    degrees = {vertex: len(neighbors) for vertex, neighbors in adjacency.items()}
    queue: List[int] = [v for v, degree in degrees.items() if degree < threshold]
    removed: Set[int] = set(queue)
    while queue:
        vertex = queue.pop()
        for neighbor in adjacency[vertex]:
            if neighbor in removed:
                continue
            degrees[neighbor] -= 1
            if degrees[neighbor] < threshold:
                removed.add(neighbor)
                queue.append(neighbor)
    return sorted(v for v in degrees if v not in removed)


def restrict_candidates_masks(
    adjacency: Sequence[int],
    members: Sequence[int],
    members_mask: int,
    candidates_mask: int,
    params: QuasiCliqueParams,
    distance_index: Optional[MaskDistanceIndex] = None,
) -> int:
    """Bitmask twin of :func:`restrict_candidates`."""
    reduced = candidates_mask
    if distance_index is not None and distance_index.enabled and members:
        reduced = distance_index.allowed_extensions(members, reduced)
    if reduced:
        reduced = filter_candidates_by_degree_masks(
            adjacency, members_mask, reduced, params
        )
    return reduced

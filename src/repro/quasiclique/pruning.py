"""Pruning rules for the quasi-clique set-enumeration search.

The rules follow Section 3.2.1/3.2.2 of the paper and the Quick algorithm
(Liu & Wong, PKDD 2008) it builds on.  Every rule removes only vertices or
subtrees that provably cannot contribute a vertex set satisfying the γ
degree condition with size ≥ ``min_size``; soundness of each rule is covered
by property-based tests against a brute-force reference miner.

Two groups of rules are implemented (the paper's terminology):

* **Vertex pruning** — iteratively drop vertices whose degree in the working
  graph is below ``ceil(γ (min_size - 1))``; they cannot belong to any
  quasi-clique (their degree inside any candidate set is even smaller).
* **Candidate quasi-clique pruning** — at a search node ``(X, cand)``,
  restrict ``cand`` and decide whether the whole subtree can be discarded,
  based on degree bounds within ``X ∪ cand`` and on the diameter bound
  implied by γ.
"""

from __future__ import annotations

from typing import AbstractSet, Dict, Hashable, Iterable, List, Optional, Set

from repro.quasiclique.definitions import QuasiCliqueParams

Vertex = Hashable
Adjacency = Dict[Vertex, Set[Vertex]]


def prune_low_degree_vertices(
    adjacency: Adjacency, params: QuasiCliqueParams
) -> Adjacency:
    """Iteratively remove vertices with degree < ``ceil(γ(min_size-1))``.

    Returns a new adjacency mapping restricted to the surviving vertices.
    No member of any vertex set that satisfies the degree condition is ever
    removed: all its neighbours inside the set survive with it, so its
    working degree never drops below the threshold.
    """
    threshold = params.base_degree_threshold
    working: Adjacency = {v: set(neighbors) for v, neighbors in adjacency.items()}
    queue: List[Vertex] = [v for v, neighbors in working.items() if len(neighbors) < threshold]
    removed: Set[Vertex] = set(queue)
    while queue:
        vertex = queue.pop()
        for neighbor in working[vertex]:
            neighbors = working[neighbor]
            neighbors.discard(vertex)
            if neighbor not in removed and len(neighbors) < threshold:
                removed.add(neighbor)
                queue.append(neighbor)
        working[vertex] = set()
    return {v: neighbors for v, neighbors in working.items() if v not in removed}


class DistanceIndex:
    """Lazy distance-≤ 2 neighbourhood index over a working adjacency.

    For γ ≥ 0.5 every pair of vertices of a quasi-clique is at distance at
    most 2 (at most 1 for γ = 1), so a candidate extension must lie inside
    the (closed) distance-bound neighbourhood of every vertex already in X.
    """

    def __init__(self, adjacency: Adjacency, distance_bound: int) -> None:
        self._adjacency = adjacency
        self._distance_bound = distance_bound
        self._cache: Dict[Vertex, Set[Vertex]] = {}

    @property
    def enabled(self) -> bool:
        """``True`` when the γ value yields a usable distance bound."""
        return self._distance_bound in (1, 2)

    def reachable(self, vertex: Vertex) -> Set[Vertex]:
        """Closed neighbourhood of ``vertex`` within the distance bound."""
        cached = self._cache.get(vertex)
        if cached is not None:
            return cached
        neighbors = self._adjacency[vertex]
        if self._distance_bound == 1:
            result = set(neighbors)
        else:
            result = set(neighbors)
            for neighbor in neighbors:
                result |= self._adjacency[neighbor]
        result.add(vertex)
        self._cache[vertex] = result
        return result

    def allowed_extensions(
        self, members: Iterable[Vertex], candidates: AbstractSet[Vertex]
    ) -> Set[Vertex]:
        """Return the candidates within the distance bound of every member."""
        allowed = set(candidates)
        for member in members:
            allowed &= self.reachable(member)
            if not allowed:
                break
        return allowed


def filter_candidates_by_degree(
    adjacency: Adjacency,
    members: AbstractSet[Vertex],
    candidates: Set[Vertex],
    params: QuasiCliqueParams,
) -> Set[Vertex]:
    """Drop candidate extensions that cannot reach the degree requirement.

    A candidate ``u`` added to any set ``Q`` in this subtree gives
    ``|Q| ≥ max(min_size, |X| + 1)`` and ``deg_Q(u) ≤ |N(u) ∩ (X ∪ cand)|``,
    so the latter must reach ``ceil(γ (max(min_size, |X|+1) - 1))``.
    The filter is applied to a fixpoint because removing one candidate can
    invalidate another.
    """
    required = params.degree_threshold(max(params.min_size, len(members) + 1))
    remaining = set(candidates)
    changed = True
    while changed:
        changed = False
        scope = members | remaining
        for candidate in list(remaining):
            if len(adjacency[candidate] & scope) < required:
                remaining.discard(candidate)
                changed = True
    return remaining


def subtree_is_hopeless(
    adjacency: Adjacency,
    members: AbstractSet[Vertex],
    candidates: AbstractSet[Vertex],
    params: QuasiCliqueParams,
) -> bool:
    """Return ``True`` when no satisfying set exists in the subtree.

    Checks that the subtree can still reach ``min_size`` and that every
    vertex already in X can reach the degree requirement of the *smallest*
    feasible final size using only vertices of ``X ∪ cand``.  Both are
    necessary conditions for any satisfying superset of X inside the
    subtree, so returning ``True`` never discards a valid quasi-clique.
    """
    if not members:
        return len(candidates) < params.min_size
    total = len(members) + len(candidates)
    if total < params.min_size:
        return True
    required = params.degree_threshold(max(params.min_size, len(members)))
    scope = members | candidates
    for member in members:
        if len(adjacency[member] & scope) < required:
            return True
    return False


def restrict_candidates(
    adjacency: Adjacency,
    members: AbstractSet[Vertex],
    candidates: Set[Vertex],
    params: QuasiCliqueParams,
    distance_index: Optional[DistanceIndex] = None,
) -> Set[Vertex]:
    """Apply every candidate-level pruning rule and return the reduced set."""
    reduced = set(candidates)
    if distance_index is not None and distance_index.enabled and members:
        reduced = distance_index.allowed_extensions(members, reduced)
    if reduced:
        reduced = filter_candidates_by_degree(adjacency, members, reduced, params)
    return reduced

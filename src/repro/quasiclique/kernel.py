"""Incremental-counter search kernel for the quasi-clique enumeration.

Every pruning rule of Sections 3.2.1–3.2.3 (and of the Quick algorithm
they build on) is a function of two per-vertex counters:

* ``indeg_x[v]``  — neighbours of ``v`` inside the growing set ``X``;
* ``indeg_ext[v]`` — neighbours of ``v`` inside ``X ∪ candExts(X)`` (the
  node's *scope*).

The from-scratch mask functions in :mod:`repro.quasiclique.pruning`
recompute those counters at every search node with an
``(adjacency[v] & scope).bit_count()`` sweep — one big-int AND plus a
popcount *per vertex* per node, repeated to a fixpoint by the candidate
filter.  This kernel instead *maintains* the counters across the
set-enumeration tree, and it does so bit-parallel: the whole counter
table is one arbitrary-precision integer of 16-bit lanes
(``lane v = bits [16v, 16v+16)``), so a counter update or a threshold
test over *all* vertices at once is a handful of machine-word-level
big-int operations instead of a per-vertex (or per-edge) Python loop.

The vector invariant:

* ``ext_vec`` — lane ``v`` holds ``|N(v) ∩ scope|`` **for every vertex
  of the working graph**, in or out of scope.  Removing a vertex ``u``
  from the scope (exhausted by the sibling sweep, removed by the
  distance rule, or removed by the degree filter) is one subtraction of
  the precomputed *spread neighbourhood* ``SPREAD[u]`` (the adjacency
  mask of ``u`` expanded to one unit per 16-bit lane).  Because every
  removal subtracts the full neighbourhood, each lane always counts a
  real set intersection and can never underflow — there are no stale
  entries to guard.

``indeg_x`` is not carried as a vector: it is only ever read for the
|X| members of the rare nodes that reach the final degree-condition
check, where |X| masked popcounts are already O(1)-per-vertex — see
:meth:`SearchKernel.members_satisfy`.

The vector is an immutable Python int, so a child node *shares* its
parent's vector at zero cost — the sibling sweep of
:meth:`SearchKernel.children` produces each child with one subtraction,
and no copy-on-write machinery exists at all.

Threshold tests use the classic SWAR borrow trick: with ``H`` the mask
of every lane's top bit and ``r_vec`` the threshold replicated into
every lane, ``(vec | H) - r_vec`` leaves lane ``v``'s top bit set
exactly when ``counter[v] ≥ r`` (no borrow ever crosses a lane: counters
and thresholds stay below 2¹⁵).  Masking the complement with the
*member lanes* or *candidate lanes* high-bit masks (``members_high``,
``cand_high`` — maintained incrementally alongside the vertex masks)
answers "does any member/candidate fall short of the threshold?" in
O(|V|/64) machine words:

* ``filter_candidates_by_degree_masks`` → one compare per fixpoint
  round plus one ``SPREAD`` subtraction per actually dropped candidate
  (the oracle re-popcounts every candidate every round);
* ``subtree_is_hopeless_masks``, the lookahead check and
  ``satisfies_degree_condition_mask`` → one compare each.

Counter invariants are asserted by the property suite against the
from-scratch oracle at every expanded node (see :meth:`unpack` /
:meth:`recompute_counters`).  The kernel changes *how* the counters are
produced, never *which* nodes are pruned: the candidate-filter fixpoint
is unique and every check is a pure function of the counters, so the
search visits the same tree and the mined output is byte-identical to
the from-scratch oracle (enforced by the differential fuzz grid with
``use_incremental_kernel=False`` as the reference).

The 16-bit lanes bound the local id space at :data:`KERNEL_MAX_VERTICES`
vertices per search — far above any working set the searches materialise
dense local masks for; :class:`~repro.quasiclique.search.QuasiCliqueSearch`
falls back to the oracle loop beyond it (or raises
:class:`~repro.errors.KernelCapacityError` when the kernel was forced).

This module is also the home of the **kernel backend seam**: this class
(``"bigint"``) and :class:`repro.quasiclique.kernel_numpy.NumpySearchKernel`
(``"numpy"`` — the counter lanes as a numpy array, retirement and threshold
rules as bulk vector ops) implement the same node/method surface, and
:func:`make_search_kernel` picks one per search by explicit name, the
``REPRO_KERNEL_BACKEND`` environment override, or the working-set-size
heuristic.  A future native (C/Cython) backend slots in by implementing the
same surface and claiming a name in :data:`KERNEL_BACKENDS` — callers only
ever go through the factory.  Whatever the backend, the mined output is
byte-identical: the big-int path doubles as the differential oracle the
numpy backend is fuzzed against.
"""

from __future__ import annotations

import os
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.errors import KernelCapacityError, ParameterError
from repro.quasiclique.definitions import QuasiCliqueParams
from repro.quasiclique.pruning import MaskDistanceIndex

#: Width of one counter lane in bits.
LANE_BITS = 16

#: Largest vertex count (and therefore largest counter value) one search
#: kernel supports: counters and thresholds must stay below the 2¹⁵ SWAR
#: compare bit.
KERNEL_MAX_VERTICES = (1 << (LANE_BITS - 1)) - 1

#: Vertex sets at or below this size are checked with per-vertex masked
#: popcounts instead of a full-width SWAR compare: k n-bit ANDs touch
#: fewer machine words than one 16n-bit lane operation while k ≪ 16.
_SMALL_SET = 8

#: Below this working-set size a γ ≥ 0.5 search keeps the from-scratch
#: oracle under automatic kernel selection: its masks span at most a few
#: machine words, so the counter vectors cannot beat them and the
#: kernel's per-search setup (the spread-neighbourhood table) would
#: dominate the many small searches SCPM issues.  γ < 0.5 searches — no
#: usable diameter bound, fat candidate sets — always profit.
KERNEL_AUTO_MIN_VERTICES = 256

#: Kernel backend names accepted by :func:`make_search_kernel`,
#: ``SCPMParams.kernel_backend`` and the ``--kernel-backend`` CLI flag.
BIGINT_BACKEND = "bigint"
NUMPY_BACKEND = "numpy"
KERNEL_BACKENDS = ("auto", BIGINT_BACKEND, NUMPY_BACKEND)

#: Environment override consulted by ``"auto"`` backend resolution —
#: set to ``bigint`` or ``numpy`` to force a backend without touching
#: parameters (mirrors ``REPRO_FUZZ_SEED``'s role in the fuzz suites).
KERNEL_BACKEND_ENV = "REPRO_KERNEL_BACKEND"

#: Working sets at or below this size keep ``uint8`` counter lanes on the
#: numpy backend: counters never exceed n-1 ≤ 126, comfortably inside the
#: dtype, and the arrays are half the width of ``uint16``.
NUMPY_UINT8_MAX_VERTICES = 127

#: ``uint16`` lanes mirror the big-int kernel's 16-bit lane bound so both
#: backends refuse the same working sets and auto-selection needs one check.
NUMPY_UINT16_MAX_VERTICES = KERNEL_MAX_VERTICES

#: Below this working-set size ``"auto"`` keeps the big-int backend even
#: when numpy is importable: per-call numpy dispatch overhead (~1 µs per
#: array op, and a few dozen ops per node) beats the few-machine-word
#: big-int lane arithmetic until the counter vectors are wide.  Measured
#: on planted-community coverage searches the crossover sits around
#: 1 000–1 200 working vertices (0.5× at n=300, 1.1× at n=1500, 2.6× at
#: n=3000), so the threshold is set just below it.  Mirrors the PR 5
#: kernel/oracle heuristic (:data:`KERNEL_AUTO_MIN_VERTICES`).
NUMPY_AUTO_MIN_VERTICES = 1024

#: ``_SPREAD_BYTES[b]`` is byte value ``b`` expanded to eight 16-bit
#: lanes (little-endian) — the building block that turns an adjacency
#: mask into its spread-neighbourhood vector with one ``bytes.join``.
_SPREAD_BYTES = []
for _b in range(256):
    _lanes = bytearray(2 * 8)
    for _i in range(8):
        if _b >> _i & 1:
            _lanes[2 * _i] = 1
    _SPREAD_BYTES.append(bytes(_lanes))
del _b, _lanes, _i


def spread_lanes(mask: int) -> int:
    """Expand a bit mask to one unit per 16-bit lane.

    ``spread_lanes(0b101) == 0x0000_0001_0000_0000_0001`` — bit ``v`` of
    ``mask`` becomes the unit of lane ``v``.  Runs as one bytes join plus
    one ``int.from_bytes`` (C speed), not a per-bit Python loop.
    """
    if not mask:
        return 0
    raw = mask.to_bytes((mask.bit_length() + 7) // 8, "little")
    table = _SPREAD_BYTES
    return int.from_bytes(b"".join(table[b] for b in raw), "little")


def threshold_table(params: QuasiCliqueParams, max_size: int) -> List[int]:
    """Precomputed ``ceil(γ(size-1))`` for every ``size`` in ``0..max_size``.

    The kernel consults a degree threshold at every node; indexing a list
    replaces the per-call ``math.ceil``/``round`` arithmetic of
    :meth:`~repro.quasiclique.definitions.QuasiCliqueParams.degree_threshold`
    (whose values these are, exactly).
    """
    return [params.degree_threshold(size) for size in range(max_size + 1)]


class KernelNode:
    """One search-tree node plus its incremental counter vectors.

    ``members`` is the extension path as a tuple of local ids,
    ``members_mask``/``candidates`` are masks in the same local id space
    (exactly the fields of the historical ``_Node``).  ``ext_vec`` is
    the lane-packed counter vector and ``members_high`` / ``cand_high``
    the matching lane-top-bit masks described in the module docstring.
    All five are plain ints — node state is immutable values, shared
    freely between relatives.
    """

    __slots__ = (
        "members",
        "members_mask",
        "candidates",
        "ext_vec",
        "members_high",
        "cand_high",
    )

    def __init__(
        self,
        members: Tuple[int, ...],
        members_mask: int,
        candidates: int,
        ext_vec: int,
        members_high: int,
        cand_high: int,
    ) -> None:
        self.members = members
        self.members_mask = members_mask
        self.candidates = candidates
        self.ext_vec = ext_vec
        self.members_high = members_high
        self.cand_high = cand_high


class SearchKernel:
    """Incremental degree bookkeeping over one search's local adjacency.

    One kernel serves one :class:`~repro.quasiclique.search.QuasiCliqueSearch`
    instance: it shares the search's local-id adjacency masks and its
    :class:`~repro.quasiclique.search.SearchStats` (``counter_updates``
    counts the individual per-vertex counter changes the vector
    operations perform — one per neighbour lane touched).

    ``debug_hook`` is a class-level test seam: when set to a callable it
    is invoked as ``debug_hook(kernel, node)`` after every
    :meth:`restrict`, at which point the counters of every in-scope
    vertex must equal the from-scratch recomputation
    (:meth:`recompute_counters`).  It is ``None`` in production.
    """

    __slots__ = (
        "adjacency",
        "params",
        "distance_index",
        "stats",
        "_thresholds",
        "_spread",
        "_ones",
        "_high",
        "_required_vecs",
    )

    #: Test seam — see class docstring.  Class-level so the property suite
    #: can observe every kernel a search builds without threading a
    #: parameter through the public API.  The numpy backend consults the
    #: same attribute, so one hook observes every backend.
    debug_hook: Optional[Callable[["SearchKernel", KernelNode], None]] = None

    #: Backend identity reported in stats/counters — the name from
    #: :data:`KERNEL_BACKENDS` plus the lane representation.
    backend_label = BIGINT_BACKEND
    dtype_name = "int"

    def __init__(
        self,
        adjacency: Sequence[int],
        params: QuasiCliqueParams,
        distance_index: Optional[MaskDistanceIndex],
        stats,
    ) -> None:
        n = len(adjacency)
        if n > KERNEL_MAX_VERTICES:
            raise KernelCapacityError(n, KERNEL_MAX_VERTICES, BIGINT_BACKEND)
        self.adjacency = adjacency
        self.params = params
        self.distance_index = distance_index
        self.stats = stats
        # Largest size ever consulted: max(min_size, |X|+1) with |X| ≤ n —
        # and min_size may exceed a tiny working graph.
        self._thresholds = threshold_table(
            params, max(n + 1, params.min_size)
        )
        self._spread = [spread_lanes(mask) for mask in adjacency]
        self._ones = spread_lanes((1 << n) - 1)
        self._high = self._ones << (LANE_BITS - 1)
        self._required_vecs: Dict[int, int] = {}

    def _required_vec(self, required: int) -> int:
        """``required`` replicated into every lane (cached per value)."""
        vec = self._required_vecs.get(required)
        if vec is None:
            vec = required * self._ones
            self._required_vecs[required] = vec
        return vec

    # ------------------------------------------------------------------
    # node construction
    # ------------------------------------------------------------------
    def root(self) -> KernelNode:
        """The root node: empty X, every vertex a candidate.

        ``ext_vec`` starts as the plain working-graph degrees packed into
        lanes.
        """
        adjacency = self.adjacency
        n = len(adjacency)
        ext_vec = int.from_bytes(
            b"".join(
                mask.bit_count().to_bytes(2, "little") for mask in adjacency
            ),
            "little",
        )
        self.stats.counter_updates += n
        return KernelNode((), 0, (1 << n) - 1, ext_vec, 0, self._high)

    def children(self, node: KernelNode) -> List[KernelNode]:
        """Expand a node into its set-enumeration children.

        Candidates are taken in ascending local id order (ascending rank —
        the relabelling in the search makes the per-node sort free).  The
        child for extension ``u`` gets ``X ∪ {u}`` and the candidates
        ranked above ``u``; each later sibling's sweep state is one
        big-int operation — ``ext_vec - SPREAD[u]`` as ``u`` retires from
        its scope.  Nothing is copied: vectors are values.
        """
        adjacency = self.adjacency
        spread = self._spread
        members = node.members
        members_mask = node.members_mask
        members_high = node.members_high
        sweep_ext = node.ext_vec
        cand_high = node.cand_high
        updates = 0
        children: List[KernelNode] = []
        rest = node.candidates
        while rest:
            low = rest & -rest
            u = low.bit_length() - 1
            rest ^= low
            high_bit = low << (LANE_BITS - 1) << (u * (LANE_BITS - 1))
            # equivalent to 1 << (u*LANE_BITS + LANE_BITS - 1)
            cand_high &= ~high_bit
            children.append(
                KernelNode(
                    members + (u,),
                    members_mask | low,
                    rest,
                    sweep_ext,
                    members_high | high_bit,
                    cand_high,
                )
            )
            if rest:
                # u leaves the scope of every higher-ranked sibling
                updates += adjacency[u].bit_count()
                sweep_ext -= spread[u]
        self.stats.counter_updates += updates
        return children

    # ------------------------------------------------------------------
    # pruning rules (counter-vector forms of repro.quasiclique.pruning)
    # ------------------------------------------------------------------
    def restrict(self, node: KernelNode) -> None:
        """Apply the candidate-level pruning rules to ``node`` in place.

        Counter twin of :func:`repro.quasiclique.pruning.restrict_candidates_masks`:
        first the diameter rule, then the degree filter — the same unique
        fixpoint.  Each fixpoint round is **one** SWAR compare exposing
        every failing candidate at once; only actually dropped candidates
        cost a ``SPREAD`` subtraction.  Only the *newest* member
        contributes a fresh distance constraint: the node's candidates are
        a subset of the parent's already-restricted candidates, so the
        older members' constraints are already satisfied.
        """
        candidates = node.candidates
        if candidates:
            distance_index = self.distance_index
            if distance_index is not None and distance_index.enabled and node.members:
                allowed = candidates & distance_index.reachable(node.members[-1])
                dropped = candidates & ~allowed
                if dropped:
                    self._remove(node, dropped)
                    candidates = allowed
            if candidates:
                required = self._thresholds[
                    max(self.params.min_size, len(node.members) + 1)
                ]
                required_vec = None
                high = self._high
                adjacency = self.adjacency
                members_mask = node.members_mask
                while True:
                    dropped = 0
                    if candidates.bit_count() <= _SMALL_SET:
                        # few candidates: masked popcounts beat a lane op
                        scope = members_mask | candidates
                        scan = candidates
                        while scan:
                            low = scan & -scan
                            scan ^= low
                            c = low.bit_length() - 1
                            if (adjacency[c] & scope).bit_count() < required:
                                dropped |= low
                    else:
                        if required_vec is None:
                            required_vec = self._required_vec(required)
                        kept_high = (node.ext_vec | high) - required_vec
                        failing_high = node.cand_high & ~kept_high
                        while failing_high:
                            low = failing_high & -failing_high
                            failing_high ^= low
                            dropped |= 1 << ((low.bit_length() - 1) >> 4)
                    if not dropped:
                        break
                    self._remove(node, dropped)
                    candidates &= ~dropped
                    if not candidates:
                        break
            node.candidates = candidates
        hook = SearchKernel.debug_hook
        if hook is not None:
            hook(self, node)

    def _remove(self, node: KernelNode, dropped: int) -> None:
        """Retire a candidate mask from the node's scope.

        One ``SPREAD`` subtraction per dropped vertex keeps every lane of
        ``ext_vec`` exact (see the module docstring — full-neighbourhood
        subtraction means no lane ever goes stale or underflows).
        """
        adjacency = self.adjacency
        spread = self._spread
        ext_vec = node.ext_vec
        cand_high = node.cand_high
        updates = 0
        scan = dropped
        while scan:
            low = scan & -scan
            scan ^= low
            v = low.bit_length() - 1
            ext_vec -= spread[v]
            cand_high &= ~(1 << ((v << 4) | 15))
            updates += adjacency[v].bit_count()
        node.ext_vec = ext_vec
        node.cand_high = cand_high
        self.stats.counter_updates += updates

    def is_hopeless(self, node: KernelNode) -> bool:
        """Counter twin of :func:`subtree_is_hopeless_masks`.

        One SWAR compare over the member lanes — except for very small
        member sets, where |X| masked popcounts touch fewer machine words
        than a full-width lane operation (lanes widen the vector 16×).
        """
        params = self.params
        members = node.members
        member_count = len(members)
        if not member_count:
            return node.candidates.bit_count() < params.min_size
        if member_count + node.candidates.bit_count() < params.min_size:
            return True
        required = self._thresholds[max(params.min_size, member_count)]
        if member_count <= _SMALL_SET:
            adjacency = self.adjacency
            scope = node.members_mask | node.candidates
            for member in members:
                if (adjacency[member] & scope).bit_count() < required:
                    return True
            return False
        kept_high = (node.ext_vec | self._high) - self._required_vec(required)
        return bool(node.members_high & ~kept_high)

    def union_satisfies(self, node: KernelNode) -> bool:
        """Lookahead: does ``X ∪ candExts(X)`` meet the degree condition?

        Counter twin of ``satisfies_degree_condition_mask(adjacency,
        members_mask | candidates, params)`` — one SWAR compare over the
        member and candidate lanes of ``ext_vec`` (or a short masked
        popcount sweep when the scope is tiny).
        """
        candidate_count = node.candidates.bit_count()
        size = len(node.members) + candidate_count
        if size < self.params.min_size:
            return False
        required = self._thresholds[size]
        if size <= _SMALL_SET:
            adjacency = self.adjacency
            scope = node.members_mask | node.candidates
            scan = scope
            while scan:
                low = scan & -scan
                scan ^= low
                if (adjacency[low.bit_length() - 1] & scope).bit_count() < required:
                    return False
            return True
        kept_high = (node.ext_vec | self._high) - self._required_vec(required)
        return not (node.members_high | node.cand_high) & ~kept_high

    def members_satisfy(self, node: KernelNode) -> bool:
        """Does ``X`` itself meet the γ degree/size condition?

        Equivalent to ``satisfies_degree_condition_mask(adjacency,
        members_mask, params)``.  ``indeg_x`` is derived here on demand —
        |X| masked popcounts at the few nodes that get this far cost less
        than maintaining a second lane vector at every node.
        """
        members = node.members
        size = len(members)
        if size < self.params.min_size:
            return False
        required = self._thresholds[size]
        adjacency = self.adjacency
        members_mask = node.members_mask
        for member in members:
            if (adjacency[member] & members_mask).bit_count() < required:
                return False
        return True

    # ------------------------------------------------------------------
    # oracle recomputation (test seam)
    # ------------------------------------------------------------------
    def recompute_counters(self, node: KernelNode) -> List[int]:
        """From-scratch ``indeg_ext`` for every vertex of the working graph.

        The vector invariant covers every vertex, in or out of scope, so
        the property suite compares the full table against
        :meth:`unpack` at every expanded node.
        """
        adjacency = self.adjacency
        scope = node.members_mask | node.candidates
        return [
            (adjacency[v] & scope).bit_count() for v in range(len(adjacency))
        ]

    def unpack(self, node: KernelNode) -> List[int]:
        """The node's live ``indeg_ext`` lane values, one per vertex."""
        ext_vec = node.ext_vec
        mask = (1 << LANE_BITS) - 1
        return [
            (ext_vec >> (v * LANE_BITS)) & mask
            for v in range(len(self.adjacency))
        ]


# ----------------------------------------------------------------------
# backend seam
# ----------------------------------------------------------------------
def numpy_available() -> bool:
    """Whether the numpy kernel backend can be constructed here."""
    try:
        from repro.quasiclique import kernel_numpy
    except Exception:  # pragma: no cover - import guard
        return False
    return kernel_numpy.HAVE_NUMPY


def resolve_kernel_backend(backend: str, num_vertices: int) -> str:
    """Resolve a backend request to ``"bigint"`` or ``"numpy"``.

    ``"auto"`` consults the :data:`KERNEL_BACKEND_ENV` environment variable
    first (``bigint``/``numpy`` force that backend, ``auto``/unset continue),
    then picks by working-set size: numpy once the counter vectors are wide
    enough that bulk ops beat big-int lane arithmetic
    (≥ :data:`NUMPY_AUTO_MIN_VERTICES` vertices, and within the numpy lane
    capacity), big-int otherwise.  Unknown names raise
    :class:`repro.errors.ParameterError`.
    """
    if backend not in KERNEL_BACKENDS:
        raise ParameterError(
            f"kernel backend must be one of {KERNEL_BACKENDS}, got {backend!r}"
        )
    if backend == "auto":
        env = os.environ.get(KERNEL_BACKEND_ENV, "").strip()
        if env and env != "auto":
            if env not in KERNEL_BACKENDS:
                raise ParameterError(
                    f"{KERNEL_BACKEND_ENV} must be one of {KERNEL_BACKENDS}, "
                    f"got {env!r}"
                )
            backend = env
    if backend != "auto":
        return backend
    if (
        NUMPY_AUTO_MIN_VERTICES <= num_vertices <= NUMPY_UINT16_MAX_VERTICES
        and numpy_available()
    ):
        return NUMPY_BACKEND
    return BIGINT_BACKEND


def make_search_kernel(
    adjacency: Sequence[int],
    params: QuasiCliqueParams,
    distance_index: Optional[MaskDistanceIndex],
    stats,
    backend: str = "auto",
):
    """Construct the search kernel the resolved backend names.

    The single construction point for every backend — the search loop and
    any later native extension meet here, so callers never name a concrete
    kernel class.  Raises :class:`~repro.errors.KernelCapacityError` when
    the working set exceeds the resolved backend's lane capacity and
    :class:`~repro.errors.ParameterError` for unknown backend names (or an
    explicit ``"numpy"`` request without numpy importable).
    """
    resolved = resolve_kernel_backend(backend, len(adjacency))
    if resolved == NUMPY_BACKEND:
        from repro.quasiclique import kernel_numpy

        if not kernel_numpy.HAVE_NUMPY:
            raise ParameterError(
                "kernel backend 'numpy' requested but numpy is not importable"
            )
        return kernel_numpy.NumpySearchKernel(
            adjacency, params, distance_index, stats
        )
    return SearchKernel(adjacency, params, distance_index, stats)


__all__ = [
    "BIGINT_BACKEND",
    "KERNEL_AUTO_MIN_VERTICES",
    "KERNEL_BACKENDS",
    "KERNEL_BACKEND_ENV",
    "KERNEL_MAX_VERTICES",
    "KernelNode",
    "LANE_BITS",
    "NUMPY_AUTO_MIN_VERTICES",
    "NUMPY_BACKEND",
    "NUMPY_UINT8_MAX_VERTICES",
    "NUMPY_UINT16_MAX_VERTICES",
    "SearchKernel",
    "make_search_kernel",
    "numpy_available",
    "resolve_kernel_backend",
    "spread_lanes",
    "threshold_table",
]

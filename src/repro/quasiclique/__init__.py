"""Quasi-clique substrate: definitions, pruned search engine, chunk-level
delta invalidation, reference miners."""

from repro.quasiclique.delta import (
    chunk_of,
    chunks_of_native,
    invalidate_memo,
    native_touches,
)
from repro.quasiclique.definitions import (
    QuasiCliqueParams,
    gamma_of,
    restricted_adjacency,
    satisfies_degree_condition,
)
from repro.quasiclique.kernel import SearchKernel
from repro.quasiclique.memo import CoverageMemo
from repro.quasiclique.pruning import (
    DistanceIndex,
    filter_candidates_by_degree,
    prune_low_degree_vertices,
    restrict_candidates,
    subtree_is_hopeless,
)
from repro.quasiclique.reference import (
    brute_force_covered_vertices,
    brute_force_maximal_quasi_cliques,
    brute_force_satisfying_sets,
    brute_force_structural_correlation,
)
from repro.quasiclique.search import (
    BFS,
    DFS,
    QuasiCliqueSearch,
    SearchBudgetExceeded,
    SearchStats,
    find_quasi_cliques,
    top_k_quasi_cliques,
    vertices_in_quasi_cliques,
)

__all__ = [
    "BFS",
    "CoverageMemo",
    "DFS",
    "DistanceIndex",
    "QuasiCliqueParams",
    "QuasiCliqueSearch",
    "SearchBudgetExceeded",
    "SearchKernel",
    "SearchStats",
    "brute_force_covered_vertices",
    "brute_force_maximal_quasi_cliques",
    "brute_force_satisfying_sets",
    "brute_force_structural_correlation",
    "chunk_of",
    "chunks_of_native",
    "filter_candidates_by_degree",
    "invalidate_memo",
    "native_touches",
    "find_quasi_cliques",
    "gamma_of",
    "prune_low_degree_vertices",
    "restrict_candidates",
    "restricted_adjacency",
    "satisfies_degree_condition",
    "subtree_is_hopeless",
    "top_k_quasi_cliques",
    "vertices_in_quasi_cliques",
]

"""One-time payload transfer to worker processes.

The striped ``n_jobs`` fan-out of PR 1 re-pickled the full graph (plus the
cached bitset index and every candidate bitset) into *each*
``ProcessPoolExecutor.submit`` call.  That cost scales with the number of
tasks, which is exactly the wrong direction for the fine-grained
work-stealing scheduler (:mod:`repro.parallel.scheduler`): more, smaller
tasks would mean more, identical graph transfers.

This module moves the shared read-only payload exactly once:

* ``"fork"`` — the payload is published in a module-level global *before*
  the pool forks; children inherit the parent's address space, so the graph
  is never serialized at all (copy-on-write pages, zero-copy attach).
* ``"shared_memory"`` — the payload is pickled **once** into a
  :class:`multiprocessing.shared_memory.SharedMemory` segment; every worker
  attaches to the segment by name in its pool initializer and unpickles
  from the shared buffer (no per-task pipe traffic, one deserialization per
  worker).
* ``"pickle"`` — portable fallback: the payload is pickled once and shipped
  to each worker through the initializer arguments (once per worker over
  the pipe, still never per task).
* ``"auto"`` — ``fork`` where the platform supports it, else
  ``shared_memory``, else ``pickle``.

Because the whole payload travels as **one** pickle (or one inherited
object graph), pickle's memo keeps the graph's cached index, its
:class:`~repro.graph.vertexset.VertexIndexer` and every candidate bitset's
indexer reference unified inside each worker — the single-indexer
invariant that :meth:`repro.correlation.scpm.SCPM._extend_parallel`
documents is preserved structurally instead of by argument-tuple
discipline.

Workers read the payload back with :func:`current_payload`; task functions
therefore carry only their small per-task arguments.  Read-only caches
ride the same payload — SCPM ships its
:class:`~repro.quasiclique.memo.CoverageMemo` snapshot this way, so every
worker starts from the coverage results the fan-out already knew without
any per-task traffic.

Fork-safety caveats
    * The pool must be created while its :class:`PayloadTransfer` is open
      (``fork`` children must fork before the staged global is cleared;
      ``shared_memory`` workers must attach before the segment is
      unlinked).  The :class:`~repro.parallel.scheduler.WorkStealingScheduler`
      sequences this correctly; direct users must too.
    * The payload is a snapshot: under ``fork`` the children see
      copy-on-write pages from fork time, under the pickling strategies a
      serialized copy.  Parent-side mutations after the pool starts reach
      no worker — treat the payload as frozen.
    * Teardown is owner-only: ``__exit__`` checks the creating PID, so a
      fork-inherited transfer object inside a worker drops references
      instead of unlinking the parent's shared segment or fork global.
    * ``"auto"`` prefers ``fork`` only where it is the platform's
      *default* start method (Linux) — macOS defaults to spawn because
      forking after system frameworks initialise is unsafe, and auto
      respects that.
    * Nested pools are forbidden; worker-side code consults
      :func:`in_worker` and degrades to sequential execution.
"""

from __future__ import annotations

import pickle
from dataclasses import dataclass
from itertools import count
from typing import Any, Callable, Dict, Optional, Set, Tuple

from repro.errors import ParameterError, TransferError

FORK = "fork"
SHARED_MEMORY = "shared_memory"
PICKLE = "pickle"
AUTO = "auto"
STRATEGIES = (FORK, SHARED_MEMORY, PICKLE, AUTO)

# ----------------------------------------------------------------------
# worker-side state
# ----------------------------------------------------------------------
# The payload the current process received through a PayloadTransfer; in
# the parent process (and in workers before their initializer ran) it is
# the _NO_PAYLOAD sentinel.
_NO_PAYLOAD = object()
_WORKER_PAYLOAD: Any = _NO_PAYLOAD

# Number of times this process deserialized (or adopted) a payload.  A
# correctly wired pool attaches exactly once per worker, however many
# tasks it executes — the scheduler's transfer stats assert on this.
_ATTACH_COUNT = 0

# Payloads staged for fork inheritance (parent side, while their transfer
# is open), keyed by a per-transfer token carried in the pool's initargs.
# Forked children inherit the dict and adopt their own entry zero-copy;
# the token keeps overlapping fork-strategy transfers (e.g. a null-model
# scheduler opened while a mining scheduler drains) from clobbering each
# other.
_FORK_PAYLOADS: Dict[int, Any] = {}
_FORK_TOKENS = count(1)

# Names of shared-memory segments this process created and has not yet
# unlinked — the leak-detection hook for the cleanup tests.
_ACTIVE_SEGMENTS: Set[str] = set()


def current_payload() -> Any:
    """Return the payload attached to this worker process.

    Raises :class:`repro.errors.TransferError` when called outside a worker
    (or before the pool initializer ran).
    """
    if _WORKER_PAYLOAD is _NO_PAYLOAD:
        raise TransferError(
            "no worker payload attached — current_payload() must run inside "
            "a pool worker initialized by a PayloadTransfer"
        )
    return _WORKER_PAYLOAD


def in_worker() -> bool:
    """``True`` inside a pool worker that holds a transferred payload.

    Nested pools are forbidden (a worker spawning its own pool would
    multiply processes and deadlock under some start methods), so
    parallel-capable components — e.g.
    :class:`repro.correlation.null_models.SimulationNullModel` — consult
    this to degrade to sequential execution inside workers.
    """
    return _WORKER_PAYLOAD is not _NO_PAYLOAD


def attach_count() -> int:
    """How many times this process deserialized/adopted a payload."""
    return _ATTACH_COUNT


def active_segments() -> Set[str]:
    """Names of shared-memory segments created here and not yet unlinked."""
    return set(_ACTIVE_SEGMENTS)


def _adopt(payload: Any) -> None:
    global _WORKER_PAYLOAD, _ATTACH_COUNT
    _WORKER_PAYLOAD = payload
    _ATTACH_COUNT += 1


def _attach_fork(token: int) -> None:
    """Pool initializer (fork strategy): adopt this pool's inherited entry."""
    try:
        payload = _FORK_PAYLOADS[token]
    except KeyError:
        raise TransferError(
            "fork payload missing — pool forked after its transfer closed?"
        ) from None
    _adopt(payload)


def _attach_shared(name: str, size: int) -> None:
    """Pool initializer (shared-memory strategy): attach and unpickle once."""
    from multiprocessing import shared_memory

    try:
        segment = shared_memory.SharedMemory(name=name)
    except FileNotFoundError as exc:
        raise TransferError(f"shared-memory segment {name!r} vanished") from exc
    try:
        _adopt(pickle.loads(bytes(segment.buf[:size])))
    finally:
        segment.close()


def _attach_blob(blob: bytes) -> None:
    """Pool initializer (pickle strategy): unpickle the shipped blob once."""
    _adopt(pickle.loads(blob))


def reset_worker_state() -> None:
    """Drop any attached payload (test isolation helper)."""
    global _WORKER_PAYLOAD, _ATTACH_COUNT
    _WORKER_PAYLOAD = _NO_PAYLOAD
    _ATTACH_COUNT = 0


# ----------------------------------------------------------------------
# parent side
# ----------------------------------------------------------------------
def resolve_transfer(strategy: str) -> str:
    """Resolve a transfer-strategy request to a concrete strategy.

    ``"auto"`` prefers ``fork`` (zero serializations), then
    ``shared_memory`` (one serialization, per-worker zero-copy attach),
    then ``pickle``.  Unknown names raise
    :class:`repro.errors.ParameterError`.
    """
    if strategy not in STRATEGIES:
        raise ParameterError(
            f"transfer must be one of {STRATEGIES}, got {strategy!r}"
        )
    if strategy != AUTO:
        return strategy
    try:
        import multiprocessing

        # Prefer fork only where it is the platform's *default* start
        # method (Linux).  macOS merely lists fork but defaults to spawn
        # because forking after system frameworks initialise is unsafe —
        # auto must not force it there.
        if multiprocessing.get_context().get_start_method() == FORK:
            return FORK
    except (ImportError, NotImplementedError):
        return PICKLE
    try:
        import multiprocessing.shared_memory  # noqa: F401

        return SHARED_MEMORY
    except ImportError:
        return PICKLE


@dataclass
class TransferStats:
    """Parent-side accounting of one payload transfer.

    ``serializations`` is the number of times the payload was pickled in
    the parent — 0 for ``fork``, 1 otherwise, and *never* a function of the
    task count (the property the scheduler benchmark asserts).
    """

    strategy: str
    serializations: int = 0
    payload_bytes: int = 0


class PayloadTransfer:
    """Context manager staging one read-only payload for a worker pool.

    Usage::

        with PayloadTransfer(payload, strategy="auto") as transfer:
            pool = ProcessPoolExecutor(
                max_workers=jobs,
                mp_context=transfer.mp_context(),
                initializer=transfer.initializer,
                initargs=transfer.initargs,
            )
            ...  # submit tasks; workers read current_payload()
            pool.shutdown()

    The payload is serialized at most once, on ``__enter__``; ``__exit__``
    releases every parent-side resource (shared-memory segments are
    unlinked, the fork global is cleared).  Leaked segments are visible
    through :func:`active_segments`.
    """

    def __init__(self, payload: Any, strategy: str = AUTO) -> None:
        self.payload = payload
        self.strategy = resolve_transfer(strategy)
        self.stats = TransferStats(strategy=self.strategy)
        self.initializer: Optional[Callable[..., None]] = None
        self.initargs: Tuple[Any, ...] = ()
        self._segment = None
        self._fork_token: Optional[int] = None
        self._owner_pid: Optional[int] = None
        self._entered = False

    def mp_context(self):
        """The multiprocessing context the pool must use (fork needs fork)."""
        import multiprocessing

        if self.strategy == FORK:
            return multiprocessing.get_context(FORK)
        return multiprocessing.get_context()

    def __enter__(self) -> "PayloadTransfer":
        import os

        if self._entered:
            raise TransferError("PayloadTransfer is not re-entrant")
        self._entered = True
        self._owner_pid = os.getpid()
        if self.strategy == FORK:
            self._fork_token = next(_FORK_TOKENS)
            _FORK_PAYLOADS[self._fork_token] = self.payload
            self.initializer = _attach_fork
            self.initargs = (self._fork_token,)
            return self
        blob = pickle.dumps(self.payload, protocol=pickle.HIGHEST_PROTOCOL)
        self.stats.serializations += 1
        self.stats.payload_bytes = len(blob)
        if self.strategy == SHARED_MEMORY:
            from multiprocessing import shared_memory

            self._segment = shared_memory.SharedMemory(
                create=True, size=max(len(blob), 1)
            )
            self._segment.buf[: len(blob)] = blob
            _ACTIVE_SEGMENTS.add(self._segment.name)
            self.initializer = _attach_shared
            self.initargs = (self._segment.name, len(blob))
        else:
            self.initializer = _attach_blob
            self.initargs = (blob,)
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        import os

        if self._owner_pid is not None and os.getpid() != self._owner_pid:
            # A fork-inherited copy (e.g. a live transfer reached a worker
            # through process inheritance, bypassing __getstate__) must
            # not tear down the parent's resources — unlinking the shared
            # segment here would break every worker the parent spawns
            # afterwards.  Drop local references only.
            self._segment = None
            self._fork_token = None
            self._entered = False
            return
        if self._fork_token is not None:
            _FORK_PAYLOADS.pop(self._fork_token, None)
            self._fork_token = None
        if self._segment is not None:
            name = self._segment.name
            try:
                self._segment.close()
                self._segment.unlink()
            except FileNotFoundError:
                pass
            _ACTIVE_SEGMENTS.discard(name)
            self._segment = None
        self._entered = False


__all__ = [
    "AUTO",
    "FORK",
    "PICKLE",
    "SHARED_MEMORY",
    "STRATEGIES",
    "PayloadTransfer",
    "TransferStats",
    "active_segments",
    "attach_count",
    "current_payload",
    "in_worker",
    "reset_worker_state",
    "resolve_transfer",
]

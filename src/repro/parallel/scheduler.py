"""Work-stealing task scheduler over a process pool with one-time transfer.

The PR-1 parallel fan-out assigned first-level attribute branches to
workers *statically* (stripe ``w`` got roots ``w, w+J, w+2J, …``).  On the
skewed subtree distributions the paper's Figure 8 workloads produce, one
worker ends up owning the dominant subtree while the others go idle — the
wall clock degenerates to the heaviest stripe.

This scheduler keeps all tasks in one **shared queue** that idle workers
pull from dynamically (the work-stealing execution model: no worker owns a
stripe, whoever is free takes the next pending batch), and fixes the two
overheads that made fine-grained tasks expensive before:

* the read-only payload (graph + cached bitset index + candidate states)
  crosses the process boundary **once per worker**, not per task, through
  :class:`repro.parallel.transfer.PayloadTransfer`;
* small tasks are **batched** by their estimated cost (the caller supplies
  a weight, e.g. the tidset size) so one pool submission amortizes queue
  and result-pipe overhead over several cheap coverage searches, while
  heavy tasks keep their own submission and can be stolen individually.

Tasks are keyed; results are collected into a key-indexed map, so callers
merge in deterministic key order no matter which worker finished what
first.  Tasks must be pure functions of ``(payload, *args)`` — that purity
plus keyed merging is what makes the mined output byte-identical to the
sequential run for any worker count.

The caller may keep submitting tasks while draining (dynamic dependency
fan-out: SCPM's second-level prefix classes are only known once their
first-level task finished).  When no usable process pool exists (platform
without ``multiprocessing``, or ``n_jobs <= 1``) the scheduler degrades to
deterministic in-process execution of the same task graph.

Determinism contract
    *Which* worker runs a task, in what order, and when results arrive is
    all nondeterministic; *what* the run computes is not.  Provided every
    task is a pure function of ``(payload, *args)``, the key-indexed
    ``results`` map after a drain is a pure function of the submitted task
    graph — independent of ``n_jobs``, batching, stealing order and
    transfer strategy.  Callers obtain deterministic *output* by merging
    from ``results`` in sorted key order (SCPM's
    ``(root, phase, position)`` keys); only ``task_durations`` and
    ``SchedulerStats`` vary between runs.  How SCPM maps onto this:
    ``SCPMParams.fanout_depth`` decides what becomes a task (1 = one task
    per first-level attribute branch; 2 = additionally one per
    second-level prefix-class subtree), ``SCPMParams.task_batch_size`` is
    forwarded as ``batch_size``, and ``SCPMParams.transfer`` as the
    transfer strategy.  Worker-side caches must honour the same purity:
    SCPM's :class:`~repro.quasiclique.memo.CoverageMemo` reaches workers
    as a read-only snapshot inside the payload and its mutable layer is
    reset at every task boundary, so a task's results (memo hit counts
    included) never depend on which tasks shared its worker.

Fork safety
    The scheduler is not re-entrant, and pools must not be nested — a
    task spawning its own scheduler inside a worker would multiply
    processes and can deadlock under some start methods (components
    degrade via :func:`repro.parallel.transfer.in_worker`).  Under the
    fork strategy, workers inherit the parent's address space — including
    any live scheduler object — so ``__exit__`` tears down the pool and
    transfer only in the process that created them (PID-checked) and a
    fork-inherited copy merely drops its references.  The payload must be
    treated as frozen once the context is entered: forked children see a
    copy-on-write snapshot, spawned children a pickle, and mutations in
    the parent after ``__enter__`` reach no worker.
"""

from __future__ import annotations

import pickle
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterator, List, Optional, Sequence, Tuple

from repro.errors import ParallelError, ParameterError, PoisonTaskError
from repro.faults import fault_point
from repro.parallel.transfer import AUTO, PayloadTransfer, TransferStats, current_payload

TaskKey = Tuple[Any, ...]

#: Default maximum number of tasks packed into one pool submission.
DEFAULT_TASK_BATCH_SIZE = 8

#: How many times a task lost to a worker death is re-executed before it
#: is quarantined as poison (the bound that keeps recovery from
#: livelocking on a task that deterministically kills its worker).
DEFAULT_MAX_TASK_RETRIES = 2

#: How many batches per worker the packer aims for.  Oversubscribing the
#: workers ~4× keeps the shared queue non-empty while any subtree is still
#: running, which is what lets idle workers steal the remaining work.
BATCH_OVERSUBSCRIPTION = 4


def resolve_jobs(n_jobs: int) -> int:
    """Resolve a worker-count request (``-1`` → every available CPU).

    The single definition of the rule shared by
    :meth:`repro.correlation.parameters.SCPMParams.resolved_jobs` and the
    parallel null model.
    """
    if n_jobs == -1:
        import os

        return os.cpu_count() or 1
    return n_jobs


def validate_jobs(n_jobs: int) -> int:
    """Validate a worker-count request (``>= 1`` or the ``-1`` sentinel).

    The single definition of the domain rule; raises
    :class:`repro.errors.ParameterError` and returns the value unchanged
    so callers can validate inline.
    """
    if n_jobs < 1 and n_jobs != -1:
        raise ParameterError(
            f"n_jobs must be >= 1 or -1 (all CPUs), got {n_jobs}"
        )
    return n_jobs


@dataclass(frozen=True)
class _Task:
    """One schedulable unit: a key, the task-function args, a cost estimate."""

    key: TaskKey
    args: Tuple[Any, ...]
    weight: int


@dataclass
class SchedulerStats:
    """Accounting for one scheduler run (benchmarks assert on these)."""

    workers: int = 0
    tasks_submitted: int = 0
    batches_submitted: int = 0
    transfer: Optional[TransferStats] = None
    #: Pickled size of the largest per-batch argument tuple (bytes), only
    #: filled when ``measure_task_bytes=True`` — lets the benchmark prove
    #: task submissions stay small and graph-free.
    max_batch_bytes: int = 0
    #: Times the worker pool broke (>= 1 worker died) and was rebuilt.
    pool_rebuilds: int = 0
    #: Task executions lost to worker deaths and re-queued.
    tasks_retried: int = 0
    #: Tasks that exhausted their retry budget and were quarantined.
    tasks_quarantined: int = 0


def pack_batches(
    tasks: Sequence[_Task], n_jobs: int, batch_size: int
) -> List[List[_Task]]:
    """Pack tasks into batches for submission — deterministic and balanced.

    Tasks are ordered heaviest-first (LPT scheduling: the dominant subtree
    starts as early as possible) with the key as tie-breaker, then packed
    greedily.  A batch closes when it holds ``batch_size`` tasks or when
    adding the next task would push its summed weight past the cap
    ``total_weight / (n_jobs · BATCH_OVERSUBSCRIPTION)`` — so cheap tasks
    coalesce while any task at or above the cap always travels alone and
    remains individually stealable.
    """
    if not tasks:
        return []
    ordered = sorted(tasks, key=lambda t: (-t.weight, t.key))
    total = sum(t.weight for t in ordered)
    cap = max(1, total // max(1, n_jobs * BATCH_OVERSUBSCRIPTION))
    batches: List[List[_Task]] = []
    current: List[_Task] = []
    current_weight = 0
    for task in ordered:
        if current and (
            len(current) >= batch_size or current_weight + task.weight > cap
        ):
            batches.append(current)
            current = []
            current_weight = 0
        current.append(task)
        current_weight += task.weight
    if current:
        batches.append(current)
    return batches


def _run_batch(
    task_fn: Callable[..., Any], batch: Sequence[Tuple[TaskKey, Tuple[Any, ...]]]
) -> List[Tuple[TaskKey, Any, float]]:
    """Pool entry point: run one batch against the worker-attached payload.

    Returns ``(key, result, seconds)`` triples; the per-task durations feed
    the scheduler's ``task_durations`` map (used by the benchmark's
    schedule simulator).
    """
    payload = current_payload()
    output: List[Tuple[TaskKey, Any, float]] = []
    for key, args in batch:
        # Chaos hook: an armed plan can kill this worker (os._exit) or
        # inject an error here — the site the worker-death recovery and
        # poison-task quarantine are tested through.  Never armed in the
        # in-process fallback, so the sequential ground truth is always
        # computable under an installed plan.
        fault_point("parallel.scheduler.task", key=key)
        started = time.perf_counter()
        result = task_fn(payload, *args)
        output.append((key, result, time.perf_counter() - started))
    return output


class WorkStealingScheduler:
    """Dynamic scheduler for keyed pure tasks over a shared payload.

    Parameters
    ----------
    payload:
        Read-only object every task needs (transferred once per worker,
        before any task runs).  Must not be mutated while the scheduler
        context is open — workers hold a fork-time snapshot or a pickle,
        so parent-side mutations would silently diverge from what tasks
        see.
    task_fn:
        Module-level callable ``task_fn(payload, *args) -> result``.  Must
        be picklable by reference and pure (same args → same result); the
        purity is what turns keyed merging into a determinism guarantee
        (see the module docstring's contract).  A task must not open its
        own scheduler or pool — nested pools are forbidden.
    n_jobs:
        Worker-process count; ``<= 1`` executes in-process (same task
        graph, submission order, no processes).
    transfer:
        Payload transfer strategy, resolved by
        :func:`repro.parallel.transfer.resolve_transfer`:
        ``"fork"``/``"shared_memory"``/``"pickle"``/``"auto"``.  Affects
        transfer cost and platform compatibility only, never results.
    batch_size:
        Maximum tasks per pool submission (see :func:`pack_batches`) —
        small tasks coalesce up to this count to amortize queue and
        result-pipe overhead, while any task at or above the weight cap
        always travels alone and remains individually stealable.  Affects
        scheduling granularity only, never results.
    measure_task_bytes:
        When ``True``, record the pickled size of each submitted batch's
        arguments in ``stats.max_batch_bytes`` (benchmark instrumentation).

    Usage::

        with WorkStealingScheduler(payload, fn, n_jobs=4) as scheduler:
            for i, item in enumerate(items):
                scheduler.submit((i,), item, weight=cost(item))
            for key, result in scheduler.drain():
                ...  # may scheduler.submit() follow-up tasks here
            results = scheduler.results
    """

    def __init__(
        self,
        payload: Any,
        task_fn: Callable[..., Any],
        n_jobs: int,
        transfer: str = AUTO,
        batch_size: int = DEFAULT_TASK_BATCH_SIZE,
        measure_task_bytes: bool = False,
        max_task_retries: int = DEFAULT_MAX_TASK_RETRIES,
    ) -> None:
        if batch_size < 1:
            raise ParameterError(f"batch_size must be >= 1, got {batch_size}")
        if n_jobs < 1:
            raise ParameterError(f"n_jobs must be >= 1, got {n_jobs}")
        if max_task_retries < 0:
            raise ParameterError(
                f"max_task_retries must be >= 0, got {max_task_retries}"
            )
        self.payload = payload
        self.task_fn = task_fn
        self.n_jobs = n_jobs
        self.batch_size = batch_size
        self.measure_task_bytes = measure_task_bytes
        self.max_task_retries = max_task_retries
        self.stats = SchedulerStats()
        self.results: Dict[TaskKey, Any] = {}
        self.task_durations: Dict[TaskKey, float] = {}
        self._transfer_strategy = transfer
        self._buffered: List[_Task] = []
        self._keys: set = set()
        self._transfer: Optional[PayloadTransfer] = None
        self._pool = None
        self._owner_pid: Optional[int] = None
        self._entered = False
        # Worker-death bookkeeping: how often each task was lost to a
        # dying worker, which keys must be resubmitted alone (so blame
        # for the next death is individual), and the quarantined poison.
        self._death_counts: Dict[TaskKey, int] = {}
        self._suspects: set = set()
        self._quarantined: List[_Task] = []

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def __enter__(self) -> "WorkStealingScheduler":
        import os

        if self._entered:
            raise ParallelError("WorkStealingScheduler is not re-entrant")
        self._entered = True
        self._owner_pid = os.getpid()
        if self.n_jobs > 1:
            try:
                from concurrent.futures import ProcessPoolExecutor

                self._transfer = PayloadTransfer(
                    self.payload, strategy=self._transfer_strategy
                ).__enter__()
                self._pool = ProcessPoolExecutor(
                    max_workers=self.n_jobs,
                    mp_context=self._transfer.mp_context(),
                    initializer=self._transfer.initializer,
                    initargs=self._transfer.initargs,
                )
            except (ImportError, NotImplementedError, OSError, ValueError):
                # No usable multiprocessing on this platform (ValueError:
                # an explicitly requested start method, e.g. fork, that the
                # platform lacks) — run in-process instead of crashing,
                # matching the other unavailable-strategy degradations.
                if self._transfer is not None:
                    self._transfer.__exit__(None, None, None)
                    self._transfer = None
                self._pool = None
        self.stats.workers = self.n_jobs if self._pool is not None else 1
        if self._transfer is not None:
            self.stats.transfer = self._transfer.stats
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        import os

        if self._owner_pid is not None and os.getpid() != self._owner_pid:
            # Fork-inherited copy inside a worker: the pool handles and the
            # transfer belong to the parent — drop references only.
            self._pool = None
            self._transfer = None
            self._entered = False
            return
        if self._pool is not None:
            self._pool.shutdown(cancel_futures=True)
            self._pool = None
        if self._transfer is not None:
            self._transfer.__exit__(exc_type, exc, tb)
            self._transfer = None
        self._entered = False

    def release_results(self) -> None:
        """Drop accumulated results, durations and key history.

        Long-lived schedulers (a null model keeps one pool open across
        many estimate waves) call this after consuming a wave's results so
        the persistent pool stays O(1) in memory; key uniqueness across
        waves must then be provided by the caller's key scheme.
        """
        self.results.clear()
        self.task_durations.clear()
        self._keys.clear()

    # ------------------------------------------------------------------
    # task graph
    # ------------------------------------------------------------------
    def submit(self, key: TaskKey, *args: Any, weight: int = 1) -> None:
        """Queue one task.  Keys must be unique across the whole run."""
        if not self._entered:
            raise ParallelError("submit() outside the scheduler context")
        if key in self._keys:
            raise ParallelError(f"duplicate task key {key!r}")
        self._keys.add(key)
        self._buffered.append(_Task(key=key, args=args, weight=max(1, weight)))

    def drain(self) -> Iterator[Tuple[TaskKey, Any]]:
        """Run queued tasks to exhaustion, yielding ``(key, result)`` pairs.

        Results are yielded as workers finish (completion order); callers
        needing determinism must merge from :attr:`results` by key after
        the drain.  The loop body may :meth:`submit` new tasks — they join
        the shared queue in the next flush.

        Worker deaths are survived: when a worker dies mid-batch (SIGKILL,
        segfault, an injected ``parallel.scheduler.task`` kill) the pool is
        rebuilt, every task in flight at the time is re-queued — task
        purity makes re-execution free of side effects — and tasks that
        were in a broken batch are resubmitted *alone* so the next death
        blames exactly one task.  A task lost more than
        :attr:`max_task_retries` times is quarantined; after every healthy
        task finished, the drain raises
        :class:`~repro.errors.PoisonTaskError` naming the quarantined keys
        (healthy results remain on :attr:`results`).
        """
        if self._pool is None:
            yield from self._drain_in_process()
            return
        from concurrent.futures import FIRST_COMPLETED, wait
        from concurrent.futures.process import BrokenProcessPool

        pending: Dict[Any, List[_Task]] = {}
        while self._buffered or pending:
            broken = not self._flush_buffered(pending)
            if not broken:
                if not pending:
                    break
                done, _ = wait(set(pending), return_when=FIRST_COMPLETED)
                for future in done:
                    batch = pending.pop(future)
                    try:
                        triples = future.result()
                    except BrokenProcessPool:
                        self._record_lost_batch(batch)
                        broken = True
                        continue
                    for key, result, seconds in triples:
                        self.results[key] = result
                        self.task_durations[key] = seconds
                        yield key, result
            if broken:
                for key, result in self._recover_from_breakage(pending):
                    yield key, result
        if self._quarantined:
            raise PoisonTaskError(task.key for task in self._quarantined)

    def _flush_buffered(self, pending: Dict[Any, List[_Task]]) -> bool:
        """Submit everything buffered; ``False`` when the pool broke.

        Tasks whose earlier batch died with a worker (*suspects*) are
        packed one per submission — individually re-runnable and
        individually blamable — while fresh tasks batch as usual.  On a
        broken pool the unsubmitted remainder goes back to the buffer.
        """
        from concurrent.futures.process import BrokenProcessPool

        suspects = [t for t in self._buffered if t.key in self._suspects]
        fresh = [t for t in self._buffered if t.key not in self._suspects]
        self._buffered = []
        batches = pack_batches(fresh, self.n_jobs, self.batch_size)
        batches.extend([task] for task in suspects)
        for index, batch in enumerate(batches):
            payload_args = [(task.key, task.args) for task in batch]
            if self.measure_task_bytes:
                size = len(pickle.dumps(payload_args, pickle.HIGHEST_PROTOCOL))
                self.stats.max_batch_bytes = max(
                    self.stats.max_batch_bytes, size
                )
            try:
                future = self._pool.submit(
                    _run_batch, self.task_fn, payload_args
                )
            except (BrokenProcessPool, RuntimeError):
                # Pool already dead (RuntimeError: shutdown raced a dying
                # executor) — re-buffer what did not make it in.
                for later in batches[index:]:
                    self._buffered.extend(later)
                return False
            pending[future] = list(batch)
            self.stats.batches_submitted += 1
            self.stats.tasks_submitted += len(batch)
        return True

    def _record_lost_batch(self, batch: List[_Task]) -> None:
        """Account one batch lost to a worker death: retry or quarantine."""
        for task in batch:
            count = self._death_counts.get(task.key, 0) + 1
            self._death_counts[task.key] = count
            self._suspects.add(task.key)
            if count > self.max_task_retries:
                self._quarantined.append(task)
                self.stats.tasks_quarantined += 1
            else:
                self.stats.tasks_retried += 1
                self._buffered.append(task)

    def _recover_from_breakage(
        self, pending: Dict[Any, List[_Task]]
    ) -> List[Tuple[TaskKey, Any]]:
        """Settle every in-flight future of a broken pool, then rebuild.

        Futures that completed before the break still carry results —
        harvest them (returned for the drain to yield); everything else
        is a lost batch.  The replacement pool reuses the original
        transfer, so workers attach the same payload.
        """
        harvested: List[Tuple[TaskKey, Any]] = []
        for future in list(pending):
            batch = pending.pop(future)
            try:
                triples = future.result()
            except BaseException:
                self._record_lost_batch(batch)
                continue
            for key, result, seconds in triples:
                self.results[key] = result
                self.task_durations[key] = seconds
                harvested.append((key, result))
        self.stats.pool_rebuilds += 1
        self._rebuild_pool()
        return harvested

    def _rebuild_pool(self) -> None:
        from concurrent.futures import ProcessPoolExecutor

        pool, self._pool = self._pool, None
        if pool is not None:
            pool.shutdown(cancel_futures=True)
        try:
            self._pool = ProcessPoolExecutor(
                max_workers=self.n_jobs,
                mp_context=self._transfer.mp_context(),
                initializer=self._transfer.initializer,
                initargs=self._transfer.initargs,
            )
        except (ImportError, NotImplementedError, OSError, ValueError) as error:
            raise ParallelError(
                f"cannot rebuild the worker pool after a worker death: {error}"
            ) from error

    def _drain_in_process(self) -> Iterator[Tuple[TaskKey, Any]]:
        """Sequential fallback: same task graph, submission order."""
        while self._buffered:
            queue, self._buffered = self._buffered, []
            self.stats.tasks_submitted += len(queue)
            self.stats.batches_submitted += 1
            for task in queue:
                started = time.perf_counter()
                result = self.task_fn(self.payload, *task.args)
                self.results[task.key] = result
                self.task_durations[task.key] = time.perf_counter() - started
                yield task.key, result

    def run(self) -> Dict[TaskKey, Any]:
        """Drain every queued task and return the key-indexed result map."""
        for _ in self.drain():
            pass
        return self.results


__all__ = [
    "BATCH_OVERSUBSCRIPTION",
    "DEFAULT_MAX_TASK_RETRIES",
    "DEFAULT_TASK_BATCH_SIZE",
    "SchedulerStats",
    "WorkStealingScheduler",
    "pack_batches",
    "resolve_jobs",
    "validate_jobs",
]

"""Work-stealing task scheduler over a process pool with one-time transfer.

The PR-1 parallel fan-out assigned first-level attribute branches to
workers *statically* (stripe ``w`` got roots ``w, w+J, w+2J, …``).  On the
skewed subtree distributions the paper's Figure 8 workloads produce, one
worker ends up owning the dominant subtree while the others go idle — the
wall clock degenerates to the heaviest stripe.

This scheduler keeps all tasks in one **shared queue** that idle workers
pull from dynamically (the work-stealing execution model: no worker owns a
stripe, whoever is free takes the next pending batch), and fixes the two
overheads that made fine-grained tasks expensive before:

* the read-only payload (graph + cached bitset index + candidate states)
  crosses the process boundary **once per worker**, not per task, through
  :class:`repro.parallel.transfer.PayloadTransfer`;
* small tasks are **batched** by their estimated cost (the caller supplies
  a weight, e.g. the tidset size) so one pool submission amortizes queue
  and result-pipe overhead over several cheap coverage searches, while
  heavy tasks keep their own submission and can be stolen individually.

Tasks are keyed; results are collected into a key-indexed map, so callers
merge in deterministic key order no matter which worker finished what
first.  Tasks must be pure functions of ``(payload, *args)`` — that purity
plus keyed merging is what makes the mined output byte-identical to the
sequential run for any worker count.

The caller may keep submitting tasks while draining (dynamic dependency
fan-out: SCPM's second-level prefix classes are only known once their
first-level task finished).  When no usable process pool exists (platform
without ``multiprocessing``, or ``n_jobs <= 1``) the scheduler degrades to
deterministic in-process execution of the same task graph.

Determinism contract
    *Which* worker runs a task, in what order, and when results arrive is
    all nondeterministic; *what* the run computes is not.  Provided every
    task is a pure function of ``(payload, *args)``, the key-indexed
    ``results`` map after a drain is a pure function of the submitted task
    graph — independent of ``n_jobs``, batching, stealing order and
    transfer strategy.  Callers obtain deterministic *output* by merging
    from ``results`` in sorted key order (SCPM's
    ``(root, phase, position)`` keys); only ``task_durations`` and
    ``SchedulerStats`` vary between runs.  How SCPM maps onto this:
    ``SCPMParams.fanout_depth`` decides what becomes a task (1 = one task
    per first-level attribute branch; 2 = additionally one per
    second-level prefix-class subtree), ``SCPMParams.task_batch_size`` is
    forwarded as ``batch_size``, and ``SCPMParams.transfer`` as the
    transfer strategy.  Worker-side caches must honour the same purity:
    SCPM's :class:`~repro.quasiclique.memo.CoverageMemo` reaches workers
    as a read-only snapshot inside the payload and its mutable layer is
    reset at every task boundary, so a task's results (memo hit counts
    included) never depend on which tasks shared its worker.

Fork safety
    The scheduler is not re-entrant, and pools must not be nested — a
    task spawning its own scheduler inside a worker would multiply
    processes and can deadlock under some start methods (components
    degrade via :func:`repro.parallel.transfer.in_worker`).  Under the
    fork strategy, workers inherit the parent's address space — including
    any live scheduler object — so ``__exit__`` tears down the pool and
    transfer only in the process that created them (PID-checked) and a
    fork-inherited copy merely drops its references.  The payload must be
    treated as frozen once the context is entered: forked children see a
    copy-on-write snapshot, spawned children a pickle, and mutations in
    the parent after ``__enter__`` reach no worker.
"""

from __future__ import annotations

import pickle
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterator, List, Optional, Sequence, Tuple

from repro.errors import ParallelError, ParameterError
from repro.parallel.transfer import AUTO, PayloadTransfer, TransferStats, current_payload

TaskKey = Tuple[Any, ...]

#: Default maximum number of tasks packed into one pool submission.
DEFAULT_TASK_BATCH_SIZE = 8

#: How many batches per worker the packer aims for.  Oversubscribing the
#: workers ~4× keeps the shared queue non-empty while any subtree is still
#: running, which is what lets idle workers steal the remaining work.
BATCH_OVERSUBSCRIPTION = 4


def resolve_jobs(n_jobs: int) -> int:
    """Resolve a worker-count request (``-1`` → every available CPU).

    The single definition of the rule shared by
    :meth:`repro.correlation.parameters.SCPMParams.resolved_jobs` and the
    parallel null model.
    """
    if n_jobs == -1:
        import os

        return os.cpu_count() or 1
    return n_jobs


def validate_jobs(n_jobs: int) -> int:
    """Validate a worker-count request (``>= 1`` or the ``-1`` sentinel).

    The single definition of the domain rule; raises
    :class:`repro.errors.ParameterError` and returns the value unchanged
    so callers can validate inline.
    """
    if n_jobs < 1 and n_jobs != -1:
        raise ParameterError(
            f"n_jobs must be >= 1 or -1 (all CPUs), got {n_jobs}"
        )
    return n_jobs


@dataclass(frozen=True)
class _Task:
    """One schedulable unit: a key, the task-function args, a cost estimate."""

    key: TaskKey
    args: Tuple[Any, ...]
    weight: int


@dataclass
class SchedulerStats:
    """Accounting for one scheduler run (benchmarks assert on these)."""

    workers: int = 0
    tasks_submitted: int = 0
    batches_submitted: int = 0
    transfer: Optional[TransferStats] = None
    #: Pickled size of the largest per-batch argument tuple (bytes), only
    #: filled when ``measure_task_bytes=True`` — lets the benchmark prove
    #: task submissions stay small and graph-free.
    max_batch_bytes: int = 0


def pack_batches(
    tasks: Sequence[_Task], n_jobs: int, batch_size: int
) -> List[List[_Task]]:
    """Pack tasks into batches for submission — deterministic and balanced.

    Tasks are ordered heaviest-first (LPT scheduling: the dominant subtree
    starts as early as possible) with the key as tie-breaker, then packed
    greedily.  A batch closes when it holds ``batch_size`` tasks or when
    adding the next task would push its summed weight past the cap
    ``total_weight / (n_jobs · BATCH_OVERSUBSCRIPTION)`` — so cheap tasks
    coalesce while any task at or above the cap always travels alone and
    remains individually stealable.
    """
    if not tasks:
        return []
    ordered = sorted(tasks, key=lambda t: (-t.weight, t.key))
    total = sum(t.weight for t in ordered)
    cap = max(1, total // max(1, n_jobs * BATCH_OVERSUBSCRIPTION))
    batches: List[List[_Task]] = []
    current: List[_Task] = []
    current_weight = 0
    for task in ordered:
        if current and (
            len(current) >= batch_size or current_weight + task.weight > cap
        ):
            batches.append(current)
            current = []
            current_weight = 0
        current.append(task)
        current_weight += task.weight
    if current:
        batches.append(current)
    return batches


def _run_batch(
    task_fn: Callable[..., Any], batch: Sequence[Tuple[TaskKey, Tuple[Any, ...]]]
) -> List[Tuple[TaskKey, Any, float]]:
    """Pool entry point: run one batch against the worker-attached payload.

    Returns ``(key, result, seconds)`` triples; the per-task durations feed
    the scheduler's ``task_durations`` map (used by the benchmark's
    schedule simulator).
    """
    payload = current_payload()
    output: List[Tuple[TaskKey, Any, float]] = []
    for key, args in batch:
        started = time.perf_counter()
        result = task_fn(payload, *args)
        output.append((key, result, time.perf_counter() - started))
    return output


class WorkStealingScheduler:
    """Dynamic scheduler for keyed pure tasks over a shared payload.

    Parameters
    ----------
    payload:
        Read-only object every task needs (transferred once per worker,
        before any task runs).  Must not be mutated while the scheduler
        context is open — workers hold a fork-time snapshot or a pickle,
        so parent-side mutations would silently diverge from what tasks
        see.
    task_fn:
        Module-level callable ``task_fn(payload, *args) -> result``.  Must
        be picklable by reference and pure (same args → same result); the
        purity is what turns keyed merging into a determinism guarantee
        (see the module docstring's contract).  A task must not open its
        own scheduler or pool — nested pools are forbidden.
    n_jobs:
        Worker-process count; ``<= 1`` executes in-process (same task
        graph, submission order, no processes).
    transfer:
        Payload transfer strategy, resolved by
        :func:`repro.parallel.transfer.resolve_transfer`:
        ``"fork"``/``"shared_memory"``/``"pickle"``/``"auto"``.  Affects
        transfer cost and platform compatibility only, never results.
    batch_size:
        Maximum tasks per pool submission (see :func:`pack_batches`) —
        small tasks coalesce up to this count to amortize queue and
        result-pipe overhead, while any task at or above the weight cap
        always travels alone and remains individually stealable.  Affects
        scheduling granularity only, never results.
    measure_task_bytes:
        When ``True``, record the pickled size of each submitted batch's
        arguments in ``stats.max_batch_bytes`` (benchmark instrumentation).

    Usage::

        with WorkStealingScheduler(payload, fn, n_jobs=4) as scheduler:
            for i, item in enumerate(items):
                scheduler.submit((i,), item, weight=cost(item))
            for key, result in scheduler.drain():
                ...  # may scheduler.submit() follow-up tasks here
            results = scheduler.results
    """

    def __init__(
        self,
        payload: Any,
        task_fn: Callable[..., Any],
        n_jobs: int,
        transfer: str = AUTO,
        batch_size: int = DEFAULT_TASK_BATCH_SIZE,
        measure_task_bytes: bool = False,
    ) -> None:
        if batch_size < 1:
            raise ParameterError(f"batch_size must be >= 1, got {batch_size}")
        if n_jobs < 1:
            raise ParameterError(f"n_jobs must be >= 1, got {n_jobs}")
        self.payload = payload
        self.task_fn = task_fn
        self.n_jobs = n_jobs
        self.batch_size = batch_size
        self.measure_task_bytes = measure_task_bytes
        self.stats = SchedulerStats()
        self.results: Dict[TaskKey, Any] = {}
        self.task_durations: Dict[TaskKey, float] = {}
        self._transfer_strategy = transfer
        self._buffered: List[_Task] = []
        self._keys: set = set()
        self._transfer: Optional[PayloadTransfer] = None
        self._pool = None
        self._owner_pid: Optional[int] = None
        self._entered = False

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def __enter__(self) -> "WorkStealingScheduler":
        import os

        if self._entered:
            raise ParallelError("WorkStealingScheduler is not re-entrant")
        self._entered = True
        self._owner_pid = os.getpid()
        if self.n_jobs > 1:
            try:
                from concurrent.futures import ProcessPoolExecutor

                self._transfer = PayloadTransfer(
                    self.payload, strategy=self._transfer_strategy
                ).__enter__()
                self._pool = ProcessPoolExecutor(
                    max_workers=self.n_jobs,
                    mp_context=self._transfer.mp_context(),
                    initializer=self._transfer.initializer,
                    initargs=self._transfer.initargs,
                )
            except (ImportError, NotImplementedError, OSError, ValueError):
                # No usable multiprocessing on this platform (ValueError:
                # an explicitly requested start method, e.g. fork, that the
                # platform lacks) — run in-process instead of crashing,
                # matching the other unavailable-strategy degradations.
                if self._transfer is not None:
                    self._transfer.__exit__(None, None, None)
                    self._transfer = None
                self._pool = None
        self.stats.workers = self.n_jobs if self._pool is not None else 1
        if self._transfer is not None:
            self.stats.transfer = self._transfer.stats
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        import os

        if self._owner_pid is not None and os.getpid() != self._owner_pid:
            # Fork-inherited copy inside a worker: the pool handles and the
            # transfer belong to the parent — drop references only.
            self._pool = None
            self._transfer = None
            self._entered = False
            return
        if self._pool is not None:
            self._pool.shutdown(cancel_futures=True)
            self._pool = None
        if self._transfer is not None:
            self._transfer.__exit__(exc_type, exc, tb)
            self._transfer = None
        self._entered = False

    def release_results(self) -> None:
        """Drop accumulated results, durations and key history.

        Long-lived schedulers (a null model keeps one pool open across
        many estimate waves) call this after consuming a wave's results so
        the persistent pool stays O(1) in memory; key uniqueness across
        waves must then be provided by the caller's key scheme.
        """
        self.results.clear()
        self.task_durations.clear()
        self._keys.clear()

    # ------------------------------------------------------------------
    # task graph
    # ------------------------------------------------------------------
    def submit(self, key: TaskKey, *args: Any, weight: int = 1) -> None:
        """Queue one task.  Keys must be unique across the whole run."""
        if not self._entered:
            raise ParallelError("submit() outside the scheduler context")
        if key in self._keys:
            raise ParallelError(f"duplicate task key {key!r}")
        self._keys.add(key)
        self._buffered.append(_Task(key=key, args=args, weight=max(1, weight)))

    def drain(self) -> Iterator[Tuple[TaskKey, Any]]:
        """Run queued tasks to exhaustion, yielding ``(key, result)`` pairs.

        Results are yielded as workers finish (completion order); callers
        needing determinism must merge from :attr:`results` by key after
        the drain.  The loop body may :meth:`submit` new tasks — they join
        the shared queue in the next flush.
        """
        if self._pool is None:
            yield from self._drain_in_process()
            return
        from concurrent.futures import FIRST_COMPLETED, wait

        pending = set()
        while self._buffered or pending:
            for batch in pack_batches(self._buffered, self.n_jobs, self.batch_size):
                payload_args = [(task.key, task.args) for task in batch]
                if self.measure_task_bytes:
                    size = len(pickle.dumps(payload_args, pickle.HIGHEST_PROTOCOL))
                    self.stats.max_batch_bytes = max(
                        self.stats.max_batch_bytes, size
                    )
                pending.add(self._pool.submit(_run_batch, self.task_fn, payload_args))
                self.stats.batches_submitted += 1
                self.stats.tasks_submitted += len(batch)
            self._buffered = []
            if not pending:
                break
            done, pending = wait(pending, return_when=FIRST_COMPLETED)
            for future in done:
                for key, result, seconds in future.result():
                    self.results[key] = result
                    self.task_durations[key] = seconds
                    yield key, result

    def _drain_in_process(self) -> Iterator[Tuple[TaskKey, Any]]:
        """Sequential fallback: same task graph, submission order."""
        while self._buffered:
            queue, self._buffered = self._buffered, []
            self.stats.tasks_submitted += len(queue)
            self.stats.batches_submitted += 1
            for task in queue:
                started = time.perf_counter()
                result = self.task_fn(self.payload, *task.args)
                self.results[task.key] = result
                self.task_durations[task.key] = time.perf_counter() - started
                yield task.key, result

    def run(self) -> Dict[TaskKey, Any]:
        """Drain every queued task and return the key-indexed result map."""
        for _ in self.drain():
            pass
        return self.results


__all__ = [
    "BATCH_OVERSUBSCRIPTION",
    "DEFAULT_TASK_BATCH_SIZE",
    "SchedulerStats",
    "WorkStealingScheduler",
    "pack_batches",
    "resolve_jobs",
    "validate_jobs",
]

"""Shared-memory parallel execution layer.

Two pieces, combined by :meth:`repro.correlation.scpm.SCPM._extend_parallel`
and :class:`repro.correlation.null_models.SimulationNullModel`:

* :mod:`repro.parallel.transfer` — moves the read-only payload (graph,
  cached bitset index, candidate states) to each worker exactly **once**
  (fork inheritance or a :mod:`multiprocessing.shared_memory` segment),
  instead of re-pickling it into every task submission;
* :mod:`repro.parallel.scheduler` — a work-stealing scheduler: one shared
  task queue that idle workers pull from dynamically, with weight-based
  batching of small tasks and keyed results for deterministic merging.
"""

from repro.parallel.scheduler import (
    DEFAULT_TASK_BATCH_SIZE,
    SchedulerStats,
    WorkStealingScheduler,
    pack_batches,
)
from repro.parallel.transfer import (
    PayloadTransfer,
    TransferStats,
    attach_count,
    current_payload,
    in_worker,
    resolve_transfer,
)

__all__ = [
    "DEFAULT_TASK_BATCH_SIZE",
    "PayloadTransfer",
    "SchedulerStats",
    "TransferStats",
    "WorkStealingScheduler",
    "attach_count",
    "current_payload",
    "in_worker",
    "pack_batches",
    "resolve_transfer",
]

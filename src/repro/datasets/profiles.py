"""Scaled-down profiles of the paper's three corpora.

The real crawls (DBLP: 108 k vertices, LastFm: 272 k, CiteSeer: 294 k) are
not redistributable and far exceed what a pure-Python quasi-clique miner can
sweep inside a benchmark harness, so each profile is a synthetic graph a
couple of orders of magnitude smaller that keeps the statistical ingredients
that drive the corresponding case study (see DESIGN.md, "Substitutions"):

* **DBLP / CiteSeer** — generic high-support terms with little structure,
  plus planted topical communities whose attribute sets have modest support
  but very high (normalised) structural correlation;
* **LastFm** — hugely popular attributes ("artists") spread over an already
  community-rich friendship graph, so even the top-δ attribute sets are only
  marginally above their null-model expectation;
* **SmallDBLP** — the smaller instance used by the performance and
  sensitivity studies (Figures 8 and 10).

Each profile also exposes the default mining parameters used by the
benchmark harness through :class:`DatasetProfile`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Tuple

from repro.correlation.parameters import SCPMParams
from repro.datasets.synthetic import CommunitySpec, SyntheticSpec, generate
from repro.graph.attributed_graph import AttributedGraph


@dataclass(frozen=True)
class DatasetProfile:
    """A named dataset plus the default mining parameters of its case study."""

    name: str
    spec: SyntheticSpec
    params: SCPMParams
    description: str

    def build(self) -> AttributedGraph:
        """Generate the graph (deterministic for a fixed spec)."""
        return generate(self.spec)


def _scaled_communities(
    communities: Tuple[CommunitySpec, ...], scale: float
) -> Tuple[CommunitySpec, ...]:
    """Scale the noise-carrier counts with the graph size.

    Community *cores* keep their size (they are the structure being
    detected); only the diluting carriers shrink or grow with the graph so a
    down-scaled profile still fits its vertex budget.
    """
    from dataclasses import replace

    return tuple(
        replace(c, noise_carriers=int(round(c.noise_carriers * scale)))
        for c in communities
    )


# ----------------------------------------------------------------------
# DBLP-like collaboration network (Table 2 / Figure 4)
# ----------------------------------------------------------------------
_DBLP_COMMUNITIES: Tuple[CommunitySpec, ...] = (
    CommunitySpec(("grid", "applic"), size=14, density=0.9, noise_carriers=40),
    CommunitySpec(("grid", "servic"), size=12, density=0.85, noise_carriers=36),
    CommunitySpec(("environ", "grid"), size=10, density=0.85, noise_carriers=38),
    CommunitySpec(("queri", "xml"), size=12, density=0.8, noise_carriers=44),
    CommunitySpec(("search", "web"), size=16, density=0.7, noise_carriers=70),
    CommunitySpec(("search", "rank"), size=12, density=0.9, noise_carriers=28),
    CommunitySpec(("dynam", "simul"), size=10, density=0.85, noise_carriers=34),
    CommunitySpec(("chip", "system"), size=10, density=0.85, noise_carriers=40),
    CommunitySpec(("queri", "data"), size=14, density=0.7, noise_carriers=90),
    CommunitySpec(("data", "stream"), size=12, density=0.8, noise_carriers=60),
    CommunitySpec(("perform", "system"), size=20, density=0.65, noise_carriers=60),
    CommunitySpec(("perform", "file"), size=10, density=0.85, noise_carriers=30),
    CommunitySpec(("structur", "index"), size=10, density=0.85, noise_carriers=30),
)

_DBLP_POPULAR = ("base", "system", "us", "model", "data", "network", "imag")


def dblp_like(scale: float = 1.0, seed: int = 11) -> DatasetProfile:
    """Synthetic collaboration network mirroring the DBLP case study.

    ``scale`` multiplies the number of vertices (1.0 → 3 000 vertices);
    planted communities are kept constant so larger scales dilute supports.
    """
    num_vertices = max(600, int(round(3000 * scale)))
    spec = SyntheticSpec(
        num_vertices=num_vertices,
        background_degree=4.0,
        vocabulary_size=400,
        zipf_exponent=1.2,
        attributes_per_vertex=3.0,
        communities=_scaled_communities(_DBLP_COMMUNITIES, scale),
        popular_attributes=_DBLP_POPULAR,
        popular_fraction=0.16,
        seed=seed,
    )
    params = SCPMParams(
        min_support=40,
        gamma=0.5,
        min_size=6,
        min_epsilon=0.0,
        min_delta=0.0,
        top_k=5,
        min_attribute_set_size=2,
        max_attribute_set_size=3,
    )
    return DatasetProfile(
        name="dblp-like",
        spec=spec,
        params=params,
        description=(
            "Collaboration network: authors connected by co-authorship, "
            "attributes are title terms; topics are planted communities."
        ),
    )


# ----------------------------------------------------------------------
# LastFm-like social music network (Table 3 / Figure 7)
# ----------------------------------------------------------------------
_LASTFM_NICHE: Tuple[CommunitySpec, ...] = (
    CommunitySpec(("SStevens", "Wilco"), size=14, density=0.85, noise_carriers=210),
    CommunitySpec(("SStevens", "OfMontreal"), size=12, density=0.85, noise_carriers=215),
    CommunitySpec(("Beirut",), size=12, density=0.85, noise_carriers=220),
    CommunitySpec(("NHotel", "SStevens"), size=12, density=0.8, noise_carriers=225),
    CommunitySpec(("ACollective",), size=14, density=0.8, noise_carriers=250),
    CommunitySpec(("BSScene", "NMHotel"), size=10, density=0.85, noise_carriers=215),
)

#: Purely structural friendship communities (no dedicated attribute).
_LASTFM_SOCIAL: Tuple[CommunitySpec, ...] = tuple(
    CommunitySpec((), size=12, density=0.8) for _ in range(40)
)

_LASTFM_POPULAR = (
    "Radiohead",
    "Coldplay",
    "Beatles",
    "RPeppers",
    "Nirvana",
    "TKillers",
    "Muse",
    "Oasis",
    "FFighters",
    "PFloyd",
)


def lastfm_like(scale: float = 1.0, seed: int = 23) -> DatasetProfile:
    """Synthetic social music network mirroring the LastFm case study."""
    num_vertices = max(800, int(round(2600 * scale)))
    spec = SyntheticSpec(
        num_vertices=num_vertices,
        background_degree=2.5,
        vocabulary_size=150,
        zipf_exponent=1.0,
        attributes_per_vertex=2.0,
        communities=_scaled_communities(_LASTFM_NICHE, scale)
        + _LASTFM_SOCIAL[: max(4, int(round(len(_LASTFM_SOCIAL) * scale)))],
        popular_attributes=_LASTFM_POPULAR,
        popular_fraction=0.38,
        seed=seed,
    )
    params = SCPMParams(
        min_support=200,
        gamma=0.5,
        min_size=4,
        min_epsilon=0.0,
        min_delta=0.0,
        top_k=5,
        min_attribute_set_size=1,
        max_attribute_set_size=3,
    )
    return DatasetProfile(
        name="lastfm-like",
        spec=spec,
        params=params,
        description=(
            "Social music network: users connected by friendship, attributes "
            "are listened-to artists; friendships form communities that are "
            "only loosely aligned with musical taste."
        ),
    )


# ----------------------------------------------------------------------
# CiteSeer-like citation network (Table 4 / Figure 9)
# ----------------------------------------------------------------------
_CITESEER_COMMUNITIES: Tuple[CommunitySpec, ...] = (
    CommunitySpec(("network", "sensor"), size=20, density=0.8, noise_carriers=44),
    CommunitySpec(("network", "hoc"), size=20, density=0.8, noise_carriers=40),
    CommunitySpec(("ad", "network", "hoc"), size=16, density=0.8, noise_carriers=30),
    CommunitySpec(("network", "rout"), size=20, density=0.75, noise_carriers=54),
    CommunitySpec(("network", "wireless"), size=20, density=0.75, noise_carriers=50),
    CommunitySpec(("node", "wireless"), size=18, density=0.85, noise_carriers=36),
    CommunitySpec(("protocol", "rout"), size=18, density=0.85, noise_carriers=38),
    CommunitySpec(("memori", "cach"), size=16, density=0.85, noise_carriers=38),
    CommunitySpec(("program", "logic"), size=18, density=0.75, noise_carriers=50),
    CommunitySpec(("optim", "queri"), size=14, density=0.85, noise_carriers=40),
    CommunitySpec(("perform", "instruct"), size=14, density=0.8, noise_carriers=40),
)

_CITESEER_POPULAR = ("system", "paper", "base", "result", "model", "us", "approach", "propos")


def citeseer_like(scale: float = 1.0, seed: int = 31) -> DatasetProfile:
    """Synthetic citation network mirroring the CiteSeer case study."""
    num_vertices = max(700, int(round(2800 * scale)))
    spec = SyntheticSpec(
        num_vertices=num_vertices,
        background_degree=5.0,
        vocabulary_size=300,
        zipf_exponent=1.1,
        attributes_per_vertex=3.0,
        communities=_scaled_communities(_CITESEER_COMMUNITIES, scale),
        popular_attributes=_CITESEER_POPULAR,
        popular_fraction=0.2,
        seed=seed,
    )
    params = SCPMParams(
        min_support=50,
        gamma=0.5,
        min_size=5,
        min_epsilon=0.0,
        min_delta=0.0,
        top_k=5,
        min_attribute_set_size=2,
        max_attribute_set_size=3,
    )
    return DatasetProfile(
        name="citeseer-like",
        spec=spec,
        params=params,
        description=(
            "Citation network: papers connected by citations, attributes are "
            "abstract terms; related-work clusters are planted communities."
        ),
    )


# ----------------------------------------------------------------------
# SmallDBLP (performance and sensitivity studies, Figures 8 and 10)
# ----------------------------------------------------------------------
_SMALL_DBLP_COMMUNITIES: Tuple[CommunitySpec, ...] = (
    CommunitySpec(("grid", "applic"), size=12, density=0.9, noise_carriers=20),
    CommunitySpec(("search", "rank"), size=10, density=0.9, noise_carriers=16),
    CommunitySpec(("queri", "xml"), size=10, density=0.85, noise_carriers=20),
    CommunitySpec(("data", "stream"), size=10, density=0.85, noise_carriers=24),
    # three moderately dense topics: the full community is *not* a quasi-clique,
    # so complete enumeration (the naive baseline) pays a combinatorial price
    # that the coverage-oriented SCPM search avoids — the effect behind Fig. 8.
    CommunitySpec(("perform", "system"), size=16, density=0.55, noise_carriers=26),
    CommunitySpec(("search", "web"), size=15, density=0.58, noise_carriers=30),
    CommunitySpec(("base", "network"), size=14, density=0.55, noise_carriers=24),
)

_SMALL_DBLP_POPULAR = ("base", "system", "us", "model", "data", "network", "imag", "algorithm")


def small_dblp_like(scale: float = 1.0, seed: int = 41) -> DatasetProfile:
    """Smaller DBLP-style graph used by the performance/sensitivity studies."""
    num_vertices = max(300, int(round(1000 * scale)))
    spec = SyntheticSpec(
        num_vertices=num_vertices,
        background_degree=4.0,
        vocabulary_size=150,
        zipf_exponent=1.2,
        attributes_per_vertex=2.5,
        communities=_scaled_communities(_SMALL_DBLP_COMMUNITIES, scale),
        popular_attributes=_SMALL_DBLP_POPULAR,
        popular_fraction=0.18,
        seed=seed,
    )
    params = SCPMParams(
        min_support=25,
        gamma=0.5,
        min_size=5,
        min_epsilon=0.1,
        min_delta=1.0,
        top_k=5,
        min_attribute_set_size=1,
        max_attribute_set_size=3,
    )
    return DatasetProfile(
        name="small-dblp-like",
        spec=spec,
        params=params,
        description="Reduced DBLP-style graph for the runtime and sensitivity sweeps.",
    )


#: Registry used by the CLI and the benchmark harness.
PROFILES: Dict[str, Callable[..., DatasetProfile]] = {
    "dblp": dblp_like,
    "lastfm": lastfm_like,
    "citeseer": citeseer_like,
    "small-dblp": small_dblp_like,
}


def load_profile(name: str, scale: float = 1.0) -> DatasetProfile:
    """Look up a profile by name (``dblp``, ``lastfm``, ``citeseer``, ``small-dblp``)."""
    try:
        factory = PROFILES[name]
    except KeyError:
        raise KeyError(
            f"unknown profile {name!r}; available: {sorted(PROFILES)}"
        ) from None
    return factory(scale=scale)

"""Datasets: the paper's running example, scaled synthetic corpora, and
evolving-graph scenarios."""

from repro.datasets.evolving import (
    EvolvingScenario,
    patch_scenario,
    random_scenario,
)
from repro.datasets.example import (
    EXAMPLE_ATTRIBUTES,
    EXAMPLE_EDGES,
    TABLE1_PARAMETERS,
    TABLE1_PATTERNS,
    paper_example_graph,
)
from repro.datasets.profiles import (
    PROFILES,
    DatasetProfile,
    citeseer_like,
    dblp_like,
    lastfm_like,
    load_profile,
    small_dblp_like,
)
from repro.datasets.synthetic import (
    CommunitySpec,
    SyntheticSpec,
    community_supports,
    generate,
    random_attributed_graph,
    random_edge_graph,
    write_random_attributed_files,
)

__all__ = [
    "CommunitySpec",
    "DatasetProfile",
    "EXAMPLE_ATTRIBUTES",
    "EXAMPLE_EDGES",
    "EvolvingScenario",
    "PROFILES",
    "SyntheticSpec",
    "TABLE1_PARAMETERS",
    "TABLE1_PATTERNS",
    "citeseer_like",
    "community_supports",
    "dblp_like",
    "generate",
    "lastfm_like",
    "load_profile",
    "paper_example_graph",
    "patch_scenario",
    "random_attributed_graph",
    "random_edge_graph",
    "random_scenario",
    "small_dblp_like",
    "write_random_attributed_files",
]

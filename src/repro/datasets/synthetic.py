"""Synthetic attributed-graph generators.

The paper evaluates on crawls of DBLP, LastFm and CiteSeer that are not
redistributable (and are far larger than a pure-Python miner can sweep in a
benchmark harness).  The generators here produce *scaled* graphs with the
same statistical ingredients:

* a sparse random background graph;
* Zipf-distributed attribute popularity (a few very frequent "generic"
  attributes, a long tail of rare ones);
* planted communities — dense subgraphs whose members all carry a designated
  attribute set — which is precisely the structure the structural
  correlation ε and its normalisation δ are designed to detect;
* optional "noise carriers": vertices that carry a community's attribute set
  without belonging to the dense subgraph, so ε stays below 1.

Every generator takes a ``seed`` and is fully deterministic.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import DatasetError, ParameterError
from repro.graph.attributed_graph import AttributedGraph


@dataclass(frozen=True)
class CommunitySpec:
    """Specification of one planted attribute-correlated community.

    Attributes
    ----------
    attributes:
        The attribute set shared by every community member (and by the noise
        carriers).  In the DBLP analogy this is a *topic*.  An empty tuple
        plants a purely structural community (dense subgraph with no
        dedicated attributes) — useful to give a graph background cohesion
        that is *not* explained by any attribute, as in the LastFm profile.
    size:
        Number of vertices in the dense subgraph.
    density:
        Probability of an edge between two community members (in addition to
        background edges).  Values well above the mining γ make the planted
        structure detectable.
    noise_carriers:
        Number of extra vertices that receive the attribute set but no extra
        edges; they dilute ε below 1 (the paper's real topics have ε ≈ 0.2).
    """

    attributes: Tuple[str, ...]
    size: int
    density: float = 0.85
    noise_carriers: int = 0

    def __post_init__(self) -> None:
        if self.size < 2:
            raise ParameterError(f"community size must be >= 2, got {self.size}")
        if not 0.0 < self.density <= 1.0:
            raise ParameterError(f"density must be in (0, 1], got {self.density}")
        if self.noise_carriers < 0:
            raise ParameterError("noise_carriers must be >= 0")
        if not self.attributes and self.noise_carriers:
            raise ParameterError(
                "a purely structural community (no attributes) cannot have "
                "noise carriers"
            )


@dataclass(frozen=True)
class SyntheticSpec:
    """Full specification of a synthetic attributed graph.

    Attributes
    ----------
    num_vertices:
        Number of vertices of the graph.
    background_degree:
        Expected background degree (Erdős–Rényi edges spread uniformly).
    vocabulary_size:
        Number of background attributes ("terms").
    zipf_exponent:
        Popularity skew of background attributes (≥ 0; larger = more skewed).
    attributes_per_vertex:
        Mean number of background attributes drawn per vertex (Poisson).
    communities:
        Planted :class:`CommunitySpec` entries.
    popular_attributes:
        Names of attributes assigned to a large random fraction of vertices
        regardless of structure — the "generic terms"/"popular artists" whose
        support is huge but whose structural correlation is unremarkable.
    popular_fraction:
        Fraction of vertices carrying each popular attribute.
    seed:
        Random seed (the generator is deterministic given the spec).
    """

    num_vertices: int
    background_degree: float = 4.0
    vocabulary_size: int = 200
    zipf_exponent: float = 1.1
    attributes_per_vertex: float = 3.0
    communities: Tuple[CommunitySpec, ...] = ()
    popular_attributes: Tuple[str, ...] = ()
    popular_fraction: float = 0.3
    seed: int = 7

    def __post_init__(self) -> None:
        if self.num_vertices < 2:
            raise ParameterError("num_vertices must be >= 2")
        if self.background_degree < 0:
            raise ParameterError("background_degree must be >= 0")
        if self.vocabulary_size < 0:
            raise ParameterError("vocabulary_size must be >= 0")
        if self.zipf_exponent < 0:
            raise ParameterError("zipf_exponent must be >= 0")
        if self.attributes_per_vertex < 0:
            raise ParameterError("attributes_per_vertex must be >= 0")
        if not 0.0 <= self.popular_fraction <= 1.0:
            raise ParameterError("popular_fraction must be in [0, 1]")
        total_planted = sum(c.size + c.noise_carriers for c in self.communities)
        if total_planted > self.num_vertices:
            raise DatasetError(
                f"communities require {total_planted} vertices but the graph "
                f"only has {self.num_vertices}"
            )


def generate(spec: SyntheticSpec) -> AttributedGraph:
    """Generate the attributed graph described by ``spec``."""
    rng = np.random.default_rng(spec.seed)
    graph = AttributedGraph()
    vertices = list(range(spec.num_vertices))
    for vertex in vertices:
        graph.add_vertex(vertex)

    _add_background_edges(graph, spec, rng)
    _add_background_attributes(graph, spec, rng)
    _add_popular_attributes(graph, spec, rng)
    _plant_communities(graph, spec, rng)
    return graph


# ----------------------------------------------------------------------
# generation steps
# ----------------------------------------------------------------------
def _add_background_edges(
    graph: AttributedGraph, spec: SyntheticSpec, rng: np.random.Generator
) -> None:
    """Sparse Erdős–Rényi background with the requested expected degree."""
    n = spec.num_vertices
    expected_edges = int(round(spec.background_degree * n / 2.0))
    if expected_edges <= 0:
        return
    added = 0
    attempts = 0
    max_attempts = expected_edges * 20
    while added < expected_edges and attempts < max_attempts:
        attempts += 1
        u = int(rng.integers(0, n))
        v = int(rng.integers(0, n))
        if u == v or graph.has_edge(u, v):
            continue
        graph.add_edge(u, v)
        added += 1


def _zipf_weights(size: int, exponent: float) -> np.ndarray:
    ranks = np.arange(1, size + 1, dtype=np.float64)
    weights = ranks ** (-exponent)
    return weights / weights.sum()


def _add_background_attributes(
    graph: AttributedGraph, spec: SyntheticSpec, rng: np.random.Generator
) -> None:
    """Assign Zipf-popular background terms to every vertex."""
    if spec.vocabulary_size == 0 or spec.attributes_per_vertex == 0:
        return
    vocabulary = [f"term{i:04d}" for i in range(spec.vocabulary_size)]
    weights = _zipf_weights(spec.vocabulary_size, spec.zipf_exponent)
    for vertex in range(spec.num_vertices):
        count = int(rng.poisson(spec.attributes_per_vertex))
        if count <= 0:
            continue
        count = min(count, spec.vocabulary_size)
        chosen = rng.choice(spec.vocabulary_size, size=count, replace=False, p=weights)
        graph.add_attributes(vertex, (vocabulary[i] for i in chosen))


def _add_popular_attributes(
    graph: AttributedGraph, spec: SyntheticSpec, rng: np.random.Generator
) -> None:
    """Assign each "popular" attribute to a large random vertex subset."""
    if not spec.popular_attributes or spec.popular_fraction == 0.0:
        return
    n = spec.num_vertices
    count = max(1, int(round(spec.popular_fraction * n)))
    for attribute in spec.popular_attributes:
        holders = rng.choice(n, size=count, replace=False)
        for vertex in holders:
            graph.add_attribute(int(vertex), attribute)


def _plant_communities(
    graph: AttributedGraph, spec: SyntheticSpec, rng: np.random.Generator
) -> None:
    """Plant the dense attribute-correlated subgraphs and their noise carriers."""
    available = list(range(spec.num_vertices))
    rng.shuffle(available)
    cursor = 0
    for community in spec.communities:
        members = available[cursor : cursor + community.size]
        cursor += community.size
        carriers = available[cursor : cursor + community.noise_carriers]
        cursor += community.noise_carriers

        for vertex in members + carriers:
            graph.add_attributes(vertex, community.attributes)

        for i, u in enumerate(members):
            for v in members[i + 1 :]:
                if rng.random() < community.density:
                    graph.add_edge(u, v)
        # make sure the planted subgraph is connected enough to be detectable:
        # chain the members so no member is isolated within the community.
        for i in range(len(members) - 1):
            graph.add_edge(members[i], members[i + 1])


def community_supports(spec: SyntheticSpec) -> Dict[Tuple[str, ...], int]:
    """Return the nominal support (members + carriers) of each planted topic."""
    return {
        community.attributes: community.size + community.noise_carriers
        for community in spec.communities
    }


def random_attributed_graph(
    num_vertices: int,
    edge_probability: float,
    attributes: Sequence[str],
    attribute_probability: float,
    seed: Optional[int] = None,
) -> AttributedGraph:
    """Small uniformly-random attributed graph (used by the property tests).

    Every possible edge appears independently with ``edge_probability`` and
    every vertex receives each attribute independently with
    ``attribute_probability``.
    """
    if not 0.0 <= edge_probability <= 1.0:
        raise ParameterError("edge_probability must be in [0, 1]")
    if not 0.0 <= attribute_probability <= 1.0:
        raise ParameterError("attribute_probability must be in [0, 1]")
    rng = np.random.default_rng(seed)
    graph = AttributedGraph()
    for vertex in range(num_vertices):
        graph.add_vertex(vertex)
        for attribute in attributes:
            if rng.random() < attribute_probability:
                graph.add_attribute(vertex, attribute)
    for u in range(num_vertices):
        for v in range(u + 1, num_vertices):
            if rng.random() < edge_probability:
                graph.add_edge(u, v)
    return graph


def write_random_attributed_files(
    edge_path,
    attribute_path,
    num_vertices: int,
    num_edges: int,
    num_attributes: int = 50,
    attribute_fraction: float = 0.3,
    seed: Optional[int] = None,
    batch_size: int = 65536,
) -> None:
    """Write a large random attributed graph straight to disk.

    The on-disk twin of :func:`random_edge_graph`: edge and attribute
    lines are generated in ``batch_size`` chunks and written immediately,
    so peak memory is O(batch), never O(|V| + |E|) — this is the generator
    the streaming-ingestion benchmark uses to produce 100k-vertex inputs
    that only ever exist as files.  The output follows the plain-text
    formats of :mod:`repro.graph.io` (see ``docs/FILE_FORMATS.md``).

    ``num_edges`` endpoint pairs are sampled uniformly; self-loops are
    dropped and duplicate pairs are *written but collapse on load*, so the
    loaded graph's edge count is approximately (slightly below)
    ``num_edges``.  Every vertex ``0..num_vertices-1`` gets one attribute
    line carrying each of the ``num_attributes`` attributes
    (``a000``, ``a001``, …) independently with ``attribute_fraction``
    probability — popular attributes whose holder sets compress into
    near-full chunk bitmaps on the sparse engine.

    Deterministic given ``seed``; both loaders
    (:func:`repro.graph.io.read_attributed_graph` and
    :func:`repro.graph.streaming.stream_attributed_graph`) produce the
    same graph from the files.
    """
    if num_vertices < 2:
        raise ParameterError("num_vertices must be >= 2")
    if num_edges < 0:
        raise ParameterError("num_edges must be >= 0")
    if num_attributes < 0:
        raise ParameterError("num_attributes must be >= 0")
    if not 0.0 <= attribute_fraction <= 1.0:
        raise ParameterError("attribute_fraction must be in [0, 1]")
    if batch_size < 1:
        raise ParameterError("batch_size must be >= 1")
    rng = np.random.default_rng(seed)

    with open(edge_path, "w", encoding="utf-8") as handle:
        handle.write("# u v\n")
        written = 0
        while written < num_edges:
            need = min(batch_size, num_edges - written)
            # Oversample a little: self-loops are dropped below.
            pairs = rng.integers(0, num_vertices, size=(need + need // 16 + 8, 2))
            pairs = pairs[pairs[:, 0] != pairs[:, 1]][:need]
            handle.write(
                "".join(f"{u} {v}\n" for u, v in pairs.tolist())
            )
            written += len(pairs)

    names = [f"a{i:03d}" for i in range(num_attributes)]
    with open(attribute_path, "w", encoding="utf-8") as handle:
        handle.write("# vertex attr1 attr2 ...\n")
        for start in range(0, num_vertices, batch_size):
            stop = min(start + batch_size, num_vertices)
            if num_attributes:
                block = rng.random((stop - start, num_attributes)) < attribute_fraction
            else:
                block = np.zeros((stop - start, 0), dtype=bool)
            lines = []
            for offset, row in enumerate(block):
                tokens = " ".join(names[i] for i in np.flatnonzero(row))
                vertex = start + offset
                lines.append(f"{vertex} {tokens}\n" if tokens else f"{vertex}\n")
            handle.write("".join(lines))


def random_edge_graph(
    num_vertices: int, num_edges: int, seed: Optional[int] = None
) -> AttributedGraph:
    """Uniform random graph built in O(|E|) — usable at 100k+ vertices.

    Unlike :func:`random_attributed_graph` (which loops over all |V|² vertex
    pairs), this samples ``num_edges`` endpoint pairs directly, dropping
    self-loops; duplicate pairs collapse inside ``add_edge``, so the edge
    count is approximately ``num_edges``.  No attributes are attached.  The
    sparse-engine memory regression tests and benchmarks build their big
    graphs with this.
    """
    if num_vertices < 2:
        raise ParameterError("num_vertices must be >= 2")
    if num_edges < 0:
        raise ParameterError("num_edges must be >= 0")
    rng = np.random.default_rng(seed)
    graph = AttributedGraph(vertices=range(num_vertices))
    # Oversample to compensate for dropped self-loops and collapsed
    # duplicates; very dense requests may still come up slightly short.
    pairs = rng.integers(0, num_vertices, size=(int(num_edges * 1.2) + 8, 2))
    for u, v in pairs:
        if u == v:
            continue
        graph.add_edge(int(u), int(v))
        if graph.num_edges >= num_edges:
            break
    return graph

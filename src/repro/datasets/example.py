"""The running example of the paper (Figure 1, Table 1).

The paper gives the vertex attributes of the 11-vertex example explicitly
(Figure 1(a)) but the edge set only through a drawing.  The edge list below
is reconstructed so that *every* quantitative statement the paper makes
about the example holds exactly:

* ``{3, 4, 5, 6}`` is a clique (the 1-quasi-clique of Figure 1(c));
* ``{6, 7, 8, 9, 10, 11}`` is a 0.6-quasi-clique of size 6 (Figure 1(d));
* ε({A}) = 9/11 ≈ 0.82 with K_A = {3, …, 11} (vertices 1 and 2 uncovered);
* ε({C}) = 0 and ε({A, B}) = 1;
* with σ_min = 3, γ_min = 0.6, min_size = 4 and ε_min = 0.5 the complete
  pattern set is exactly the seven rows of Table 1.

The reconstruction is validated against Table 1 by
``tests/correlation/test_paper_example.py``.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.graph.attributed_graph import AttributedGraph

#: Vertex attributes exactly as given in Figure 1(a).
EXAMPLE_ATTRIBUTES: Dict[int, Tuple[str, ...]] = {
    1: ("A", "C"),
    2: ("A",),
    3: ("A", "C", "D"),
    4: ("A", "D"),
    5: ("A", "E"),
    6: ("A", "B", "C"),
    7: ("A", "B", "E"),
    8: ("A", "B"),
    9: ("A", "B"),
    10: ("A", "B", "D"),
    11: ("A", "B"),
}

#: Reconstructed edge list consistent with Figures 1(b)–(d) and Table 1.
EXAMPLE_EDGES: List[Tuple[int, int]] = [
    (1, 2), (1, 3), (2, 3),
    (3, 4), (3, 5), (3, 6), (3, 7),
    (4, 5), (4, 6), (5, 6),
    (6, 7), (6, 8), (6, 9),
    (7, 8), (7, 10),
    (8, 11),
    (9, 10), (9, 11), (10, 11),
]

#: The seven patterns of Table 1 as (attribute set, vertex set) pairs.
TABLE1_PATTERNS: List[Tuple[Tuple[str, ...], Tuple[int, ...]]] = [
    (("A",), (6, 7, 8, 9, 10, 11)),
    (("A",), (3, 4, 5, 6)),
    (("A",), (3, 4, 6, 7)),
    (("A",), (3, 5, 6, 7)),
    (("A",), (3, 6, 7, 8)),
    (("B",), (6, 7, 8, 9, 10, 11)),
    (("A", "B"), (6, 7, 8, 9, 10, 11)),
]

#: Parameters used to produce Table 1 (Section 2.1.2).
TABLE1_PARAMETERS = {
    "min_support": 3,
    "gamma": 0.6,
    "min_size": 4,
    "min_epsilon": 0.5,
}


def paper_example_graph() -> AttributedGraph:
    """Build the 11-vertex example attributed graph of Figure 1.

    Examples
    --------
    >>> graph = paper_example_graph()
    >>> graph.num_vertices, graph.num_edges, graph.num_attributes
    (11, 19, 5)
    """
    graph = AttributedGraph()
    for vertex, attributes in EXAMPLE_ATTRIBUTES.items():
        graph.add_vertex(vertex)
        graph.add_attributes(vertex, attributes)
    for u, v in EXAMPLE_EDGES:
        graph.add_edge(u, v)
    return graph

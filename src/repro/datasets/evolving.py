"""Evolving-graph scenarios — seeded (graph, edit-script) pairs.

The delta-vs-full differential harness needs the same thing in many
places (``tests/evolve/``, the store/serve delta suites,
``benchmarks/bench_incremental_update.py``, the `scpm update` docs
example): a reproducible initial graph, a reproducible sequence of edit
batches, and an *independent* way to answer "what should the graph look
like after batch k?".  :class:`EvolvingScenario` packages all three:

* :meth:`~EvolvingScenario.build_handle` — the evolvable
  :class:`~repro.graph.streaming.StreamedGraphHandle` (fresh per call),
  built through the streaming builder exactly as production ingest would.
* :meth:`~EvolvingScenario.batches` — the edit script, as
  :class:`~repro.graph.evolve.EdgeEdit` /
  :class:`~repro.graph.evolve.AttributeEdit` batches.
* :meth:`~EvolvingScenario.replay` — the ground truth: a mutable
  :class:`~repro.graph.attributed_graph.AttributedGraph` built from the
  initial state plus the first ``upto`` batches through the *hashed*
  per-element mutators — a completely independent code path from the
  copy-on-write container edits, so a bug in either side surfaces as a
  divergence.

Vertices enter both representations in the same first-seen order
(initial vertices ascending, then new vertices in edit order), so the
dense-id spaces align and mined outputs are comparable byte-for-byte.

Two generators cover the two test shapes:

* :func:`random_scenario` — small dense-ish graphs whose edits hit many
  chunks (every invalidation path fires; the differential fuzz shape).
* :func:`patch_scenario` — chunk-aligned vertex patches with one
  attribute each and edits confined to few patches, so most roots and
  branches are provably clean (the reuse-path and benchmark shape).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

from repro.graph.attributed_graph import AttributedGraph
from repro.graph.evolve import AttributeEdit, EdgeEdit
from repro.graph.sparseset import CHUNK_BITS
from repro.graph.streaming import StreamedGraphHandle, StreamingGraphBuilder

#: One edit batch: the edge edits then the attribute edits of one update.
EditBatch = Tuple[List[EdgeEdit], List[AttributeEdit]]


@dataclass
class EvolvingScenario:
    """A reproducible initial graph plus an edit script.

    Instances are plain data — building a handle or a replay never
    mutates the scenario, so one scenario drives any number of
    incremental/full/parallel runs in a test.
    """

    vertices: List[int]
    initial_edges: List[Tuple[int, int]]
    initial_attributes: Dict[int, List[str]]
    edit_batches: List[EditBatch] = field(default_factory=list)

    # -- the evolvable representation -----------------------------------
    def build_handle(self) -> StreamedGraphHandle:
        """Stream the initial state into a fresh evolvable handle."""
        builder = StreamingGraphBuilder()
        for vertex in self.vertices:
            builder.add_vertex(vertex)
        for u, v in self.initial_edges:
            builder.add_edge(u, v)
        for vertex in self.vertices:
            attributes = self.initial_attributes.get(vertex)
            if attributes:
                builder.add_attributes(vertex, attributes)
        return builder.finish()

    # -- the edit script ------------------------------------------------
    def batches(self) -> List[EditBatch]:
        """The edit script (aliases the stored batches; do not mutate)."""
        return self.edit_batches

    # -- the independent ground truth -----------------------------------
    def initial_graph(self) -> AttributedGraph:
        """The initial state as a mutable hashed graph."""
        graph = AttributedGraph()
        for vertex in self.vertices:
            graph.add_vertex(vertex)
        for u, v in self.initial_edges:
            graph.add_edge(u, v)
        for vertex in self.vertices:
            for attribute in self.initial_attributes.get(vertex, ()):
                graph.add_attribute(vertex, attribute)
        return graph

    def replay(self, upto: int) -> AttributedGraph:
        """Ground truth after the first ``upto`` batches.

        Replays through the per-element ``AttributedGraph`` mutators —
        an independent path from the chunked copy-on-write edits, and
        the oracle the differential harness re-mines from scratch.
        """
        graph = self.initial_graph()
        for edge_edits, attribute_edits in self.edit_batches[:upto]:
            for edit in edge_edits:
                if edit.add:
                    graph.add_edge(edit.u, edit.v)
                else:
                    graph.remove_edge(edit.u, edit.v)
            for edit in attribute_edits:
                if edit.add:
                    graph.add_attribute(edit.vertex, edit.attribute)
                else:
                    graph.remove_attribute(edit.vertex, edit.attribute)
        return graph


def random_scenario(
    seed: int,
    num_vertices: int = 60,
    attributes: Sequence[str] = ("a", "b", "c", "d"),
    edge_probability: float = 0.12,
    attribute_probability: float = 0.45,
    num_batches: int = 4,
    edge_edits_per_batch: int = 6,
    attribute_edits_per_batch: int = 4,
    new_vertex_probability: float = 0.1,
) -> EvolvingScenario:
    """A seeded random graph with a random add/remove/flip edit script.

    Edits are generated against a simulated replica, so additions target
    absent edges/attributes and removals target present ones (every edit
    is effective — no silent no-op batches).  With probability
    ``new_vertex_probability`` an edge edit instead attaches a brand-new
    vertex, exercising indexer growth mid-script.
    """
    rng = random.Random(seed)
    vertices = list(range(num_vertices))
    replica = AttributedGraph()
    for vertex in vertices:
        replica.add_vertex(vertex)
    initial_edges: List[Tuple[int, int]] = []
    for u in range(num_vertices):
        for v in range(u + 1, num_vertices):
            if rng.random() < edge_probability:
                initial_edges.append((u, v))
                replica.add_edge(u, v)
    initial_attributes: Dict[int, List[str]] = {}
    for vertex in vertices:
        held = [a for a in attributes if rng.random() < attribute_probability]
        if held:
            initial_attributes[vertex] = held
            replica.add_attributes(vertex, held)

    next_new_vertex = num_vertices
    edit_batches: List[EditBatch] = []
    for _ in range(num_batches):
        edge_edits: List[EdgeEdit] = []
        for _ in range(edge_edits_per_batch):
            if rng.random() < new_vertex_probability:
                u = rng.randrange(num_vertices)
                v = next_new_vertex
                next_new_vertex += 1
                edge_edits.append(EdgeEdit(u, v, add=True))
                replica.add_edge(u, v)
                continue
            u, v = rng.sample(list(replica.vertices()), 2)
            if replica.has_edge(u, v):
                edge_edits.append(EdgeEdit(u, v, add=False))
                replica.remove_edge(u, v)
            else:
                edge_edits.append(EdgeEdit(u, v, add=True))
                replica.add_edge(u, v)
        attribute_edits: List[AttributeEdit] = []
        for _ in range(attribute_edits_per_batch):
            vertex = rng.choice(list(replica.vertices()))
            attribute = rng.choice(list(attributes))
            if attribute in replica.attributes_of(vertex):
                attribute_edits.append(
                    AttributeEdit(vertex, attribute, add=False)
                )
                replica.remove_attribute(vertex, attribute)
            else:
                attribute_edits.append(
                    AttributeEdit(vertex, attribute, add=True)
                )
                replica.add_attribute(vertex, attribute)
        edit_batches.append((edge_edits, attribute_edits))
    return EvolvingScenario(
        vertices=vertices,
        initial_edges=initial_edges,
        initial_attributes=initial_attributes,
        edit_batches=edit_batches,
    )


def patch_scenario(
    seed: int,
    num_patches: int = 8,
    patch_chunks: int = 1,
    edges_per_vertex: float = 3.0,
    edited_patches: int = 1,
    edge_edits: int = 32,
    num_batches: int = 1,
) -> EvolvingScenario:
    """Chunk-aligned patches with localized edits — the reuse shape.

    The vertex space is split into ``num_patches`` patches of exactly
    ``patch_chunks *`` :data:`~repro.graph.sparseset.CHUNK_BITS` ids;
    patch ``p`` carries the single attribute ``"p<p>"`` and random
    intra-patch edges.  Edits flip random edges inside the first
    ``edited_patches`` patches only, so the touched-chunk footprint —
    and therefore the dirty fraction of roots, branches and memo
    entries — is ``edited_patches / num_patches`` by construction.
    This is the scenario ``benchmarks/bench_incremental_update.py``
    scales up to prove update cost tracks delta size, not graph size.
    """
    rng = random.Random(seed)
    patch_size = patch_chunks * CHUNK_BITS
    num_vertices = num_patches * patch_size
    vertices = list(range(num_vertices))
    initial_edges: List[Tuple[int, int]] = []
    initial_attributes: Dict[int, List[str]] = {}
    for patch in range(num_patches):
        base = patch * patch_size
        label = f"p{patch}"
        seen = set()
        for _ in range(int(patch_size * edges_per_vertex)):
            u, v = rng.sample(range(base, base + patch_size), 2)
            key = (min(u, v), max(u, v))
            if key in seen:
                continue
            seen.add(key)
            initial_edges.append(key)
        for vertex in range(base, base + patch_size):
            initial_attributes[vertex] = [label]
    present = set(initial_edges)
    edit_batches: List[EditBatch] = []
    span = edited_patches * patch_size
    for _ in range(num_batches):
        batch: List[EdgeEdit] = []
        for _ in range(edge_edits):
            u, v = rng.sample(range(span), 2)
            key = (min(u, v), max(u, v))
            if key in present:
                batch.append(EdgeEdit(key[0], key[1], add=False))
                present.discard(key)
            else:
                batch.append(EdgeEdit(key[0], key[1], add=True))
                present.add(key)
        edit_batches.append((batch, []))
    return EvolvingScenario(
        vertices=vertices,
        initial_edges=initial_edges,
        initial_attributes=initial_attributes,
        edit_batches=edit_batches,
    )


__all__ = [
    "EditBatch",
    "EvolvingScenario",
    "patch_scenario",
    "random_scenario",
]

#!/usr/bin/env python
"""Documentation QA gate (run by the CI ``docs`` job and the test suite).

Two checks, both designed to fail on *regressions* rather than style:

1. **Internal links resolve** — every relative markdown link target in
   ``README.md``, ``CHANGES.md``, ``ROADMAP.md`` and ``docs/*.md`` must
   exist on disk (anchors are stripped; absolute URLs and ``mailto:`` are
   skipped).  Inline code spans are ignored so ``[a, b]`` inside
   back-ticks is not mistaken for a link.
2. **Module docstrings** — every module under ``src/repro`` (packages
   included) must open with a docstring.  The docstring convention is
   what makes the architecture documentation navigable; a new module
   without one fails the gate.

Exit status 0 when clean; 1 with a per-finding report otherwise.
"""

from __future__ import annotations

import ast
import re
import sys
from pathlib import Path
from typing import List

REPO_ROOT = Path(__file__).resolve().parent.parent

#: Markdown files whose relative links must resolve.
DOC_FILES = ("README.md", "CHANGES.md", "ROADMAP.md")
DOC_GLOBS = ("docs/*.md",)

#: Source tree whose modules must carry docstrings.
SOURCE_ROOT = "src/repro"

_LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
_CODE_SPAN = re.compile(r"`[^`]*`")
_FENCE = re.compile(r"^(```|~~~)")


def iter_doc_files(root: Path) -> List[Path]:
    files = [root / name for name in DOC_FILES if (root / name).exists()]
    for pattern in DOC_GLOBS:
        files.extend(sorted(root.glob(pattern)))
    return files


def check_links(root: Path) -> List[str]:
    """Return one message per broken relative link in the doc files."""
    problems: List[str] = []
    for doc in iter_doc_files(root):
        in_fence = False
        for line_number, line in enumerate(
            doc.read_text(encoding="utf-8").splitlines(), start=1
        ):
            if _FENCE.match(line.strip()):
                in_fence = not in_fence
                continue
            if in_fence:
                continue
            for match in _LINK.finditer(_CODE_SPAN.sub("", line)):
                target = match.group(1)
                if target.startswith(("http://", "https://", "mailto:", "#")):
                    continue
                path = target.split("#", 1)[0]
                if not path:
                    continue
                resolved = (doc.parent / path).resolve()
                if not resolved.exists():
                    problems.append(
                        f"{doc.relative_to(root)}:{line_number}: "
                        f"broken link target {target!r}"
                    )
    return problems


def check_module_docstrings(root: Path) -> List[str]:
    """Return one message per module under src/repro without a docstring."""
    problems: List[str] = []
    for path in sorted((root / SOURCE_ROOT).rglob("*.py")):
        tree = ast.parse(path.read_text(encoding="utf-8"), filename=str(path))
        docstring = ast.get_docstring(tree)
        if not docstring or not docstring.strip():
            problems.append(
                f"{path.relative_to(root)}: missing module docstring"
            )
    return problems


def main() -> int:
    problems = check_links(REPO_ROOT) + check_module_docstrings(REPO_ROOT)
    for problem in problems:
        print(f"docs-check: {problem}")
    if problems:
        print(f"docs-check: {len(problems)} problem(s)")
        return 1
    checked = len(iter_doc_files(REPO_ROOT))
    modules = len(list((REPO_ROOT / SOURCE_ROOT).rglob("*.py")))
    print(f"docs-check: OK ({checked} doc files, {modules} modules)")
    return 0


if __name__ == "__main__":
    sys.exit(main())

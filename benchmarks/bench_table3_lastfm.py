"""Table 3 — LastFm case study (top σ / ε / δ_lb attribute sets).

Paper finding: in the music network the most frequent artists are also the
top-ε attribute sets, but their normalized correlation is unremarkable
(δ well below the niche tastes that dominate the top-δ ranking, which are
themselves only slightly above the null expectation — nothing like the huge
δ values of DBLP/CiteSeer).
"""

from repro.analysis.ranking import render_case_study_table
from repro.correlation.scpm import SCPM


def test_table3_lastfm_rankings(benchmark, emit, lastfm_profile, lastfm_graph):
    params = lastfm_profile.params
    result = benchmark.pedantic(
        lambda: SCPM(lastfm_graph, params).mine(), rounds=1, iterations=1
    )
    emit(
        "table3_lastfm",
        render_case_study_table(
            result, "Table 3 — LastFm-like", n=10, min_set_size=1
        ),
    )

    top_sigma = result.top_by_support(10, min_set_size=1)
    top_epsilon = result.top_by_epsilon(10, min_set_size=1)
    top_delta = result.top_by_delta(10, min_set_size=1)

    # 1. the top-epsilon sets largely coincide with the top-support sets
    sigma_sets = {frozenset(r.attributes) for r in top_sigma}
    epsilon_sets = {frozenset(r.attributes) for r in top_epsilon}
    assert len(sigma_sets & epsilon_sets) >= 5

    # 2. popular artists have delta below the niche attribute sets
    best_popular_delta = max(r.delta for r in top_sigma)
    assert top_delta[0].delta > best_popular_delta

    # 3. unlike DBLP, even the best delta is of order 1, not orders of magnitude
    assert top_delta[0].delta < 20

    # 4. niche tastes (planted around "SStevens" and friends) reach the top-delta table
    delta_labels = " ".join(r.label() for r in top_delta)
    assert "SStevens" in delta_labels or "Beirut" in delta_labels or "ACollective" in delta_labels

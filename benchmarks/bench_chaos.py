"""Chaos gate — the fault-tolerance acceptance bars, CI-gated.

Three promises made by the robustness layer are held under live fault
injection (:mod:`repro.faults`), with the injection plans fully seeded
so every run is reproducible:

* **mining** — with ≥ 2 worker kills injected per parallel run, mining
  output stays *byte-identical* to the fault-free sequential run across
  engines × schedules (the scheduler heals by rebuilding its pool and
  re-executing lost tasks, never by dropping or duplicating a branch);
* **store** — a process kill at *every* ``PatternStore.save`` fault
  site leaves a store ``verify_store`` reports clean: the run is fully
  present or fully absent, zero unrecoverable files;
* **serving** — with the only reader held by an injected slow query,
  excess requests are shed with ``503`` + ``Retry-After`` well inside
  the request deadline (bounded tail, not queue collapse), and the
  server still drains cleanly afterwards — zero hung connections.

The report prints heal counts, the crash-site matrix, and the shed-path
latency spread so the trajectory catches robustness regressions the
way the serving benchmark catches throughput ones.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
import threading
import time
from http.client import HTTPConnection
from pathlib import Path

from repro.correlation.parameters import SCHEDULES, SCPMParams
from repro.correlation.scpm import SCPM
from repro.datasets.synthetic import random_attributed_graph
from repro.faults import KILL_EXIT_CODE, FaultPlan, FaultRule, installed
from repro.serve.http import RETRY_AFTER_SECONDS, create_server
from repro.store import SAVE_FAULT_SITES, verify_store

from conftest import bench_scale

ENGINES = ("dense", "sparse")
TASK_SITE = "parallel.scheduler.task"
READER_SITE = "serve.reader.query"

#: Shed responses must arrive well inside the request deadline.
REQUEST_DEADLINE = 2.0
SHED_LATENCY_BOUND = 1.0

_CHILD_SAVE = """\
import sys
sys.path.insert(0, {src!r})
from repro.correlation.patterns import (
    AttributeSetResult, MiningCounters, MiningResult,
    StructuralCorrelationPattern,
)
from repro.store import PatternStore

patterns = tuple(
    StructuralCorrelationPattern(
        attributes=("a", "b"), vertices=frozenset(range(p, p + 4)), gamma=0.7
    )
    for p in range(2)
)
record = AttributeSetResult(
    attributes=("a", "b"), support=4, epsilon=0.5, expected_epsilon=0.1,
    delta=0.4, covered_vertices=frozenset(range(5)), patterns=patterns,
    qualified=True,
)
result = MiningResult(
    algorithm="chaos-bench", evaluated=[record],
    counters=MiningCounters(attribute_sets_evaluated=1),
)
with PatternStore({store!r}) as store:
    store.save(result)
"""


def _params(**overrides):
    defaults = dict(
        min_support=3, gamma=0.6, min_size=3, min_epsilon=0.1, top_k=4
    )
    defaults.update(overrides)
    return SCPMParams(**defaults)


def _canonical_bytes(result) -> bytes:
    def canon_record(r):
        return (
            r.attributes, r.support, r.epsilon, r.expected_epsilon, r.delta,
            tuple(sorted(map(repr, r.covered_vertices))),
            tuple(
                (p.attributes, tuple(sorted(map(repr, p.vertices))), p.gamma)
                for p in r.patterns
            ),
            r.qualified,
        )

    return repr(
        tuple(canon_record(r) for r in result.evaluated)
    ).encode("utf-8")


def test_mining_heals_injected_worker_kills(tmp_path, emit):
    scale = bench_scale()
    graph = random_attributed_graph(
        num_vertices=max(24, int(48 * scale)),
        edge_probability=0.35,
        attributes=["a", "b", "c", "d"],
        attribute_probability=0.5,
        seed=17,
    )
    rows = []
    for engine in ENGINES:
        sequential = SCPM(
            graph, _params(engine=engine, n_jobs=1)
        ).mine()
        reference = _canonical_bytes(sequential)
        assert sequential.evaluated, "chaos workload must evaluate sets"
        for schedule in SCHEDULES:
            plan = FaultPlan(
                [FaultRule(site=TASK_SITE, action="kill",
                           occurrences=(0, 2))],
                state_dir=tmp_path / f"faults-{engine}-{schedule}",
            )
            started = time.perf_counter()
            with installed(plan):
                miner = SCPM(
                    graph,
                    _params(engine=engine, n_jobs=2, schedule=schedule),
                )
                chaotic = miner.mine()
            seconds = time.perf_counter() - started
            stats = miner.last_scheduler_stats
            kills = plan.occurrences_fired(TASK_SITE)
            assert kills >= 2, (
                f"{engine}/{schedule}: the plan must actually kill "
                f"workers (fired {kills})"
            )
            assert stats.pool_rebuilds >= 1, (engine, schedule, stats)
            assert stats.tasks_retried >= 1, (engine, schedule, stats)
            assert stats.tasks_quarantined == 0, (engine, schedule, stats)
            assert _canonical_bytes(chaotic) == reference, (
                f"{engine}/{schedule}: healed parallel output diverged "
                "from sequential"
            )
            rows.append(
                f"{engine:>8} × {schedule:<6} kills={kills} "
                f"rebuilds={stats.pool_rebuilds} "
                f"retried={stats.tasks_retried} {seconds:.2f}s identical"
            )
    emit(
        "bench_chaos_mining",
        "\n".join(
            ["chaos gate — mining under injected worker kills"] + rows
        ),
    )


def test_store_crash_fuzz_never_tears(tmp_path, emit):
    src = str(Path(__file__).resolve().parents[1] / "src")
    rows, unrecoverable = [], []
    for site in SAVE_FAULT_SITES:
        state = tmp_path / f"state-{site.replace('.', '-')}"
        store_path = tmp_path / f"{site.replace('.', '-')}.sqlite"
        plan = FaultPlan(
            [FaultRule(site=site, action="kill", occurrences=(0,))],
            state_dir=state,
        )
        plan_path = plan.save(state / "plan.json")
        env = dict(os.environ, REPRO_FAULT_PLAN=str(plan_path))
        proc = subprocess.run(
            [sys.executable, "-c",
             _CHILD_SAVE.format(src=src, store=str(store_path))],
            env=env,
        )
        assert proc.returncode == KILL_EXIT_CODE, (site, proc.returncode)
        report = verify_store(store_path)
        if not report.ok:
            unrecoverable.append((site, report.failures))
        verdict = "clean" if report.ok else "TORN"
        rows.append(
            f"{site:>28}: killed → {verdict}, {report.runs} run(s)"
        )
    emit(
        "bench_chaos_store",
        "\n".join(
            [f"chaos gate — crash fuzz over {len(SAVE_FAULT_SITES)} "
             "save fault sites"] + rows
        ),
    )
    assert not unrecoverable, unrecoverable


def test_serving_sheds_inside_deadline_and_drains(tmp_path, emit):
    src = str(Path(__file__).resolve().parents[1] / "src")
    store_path = tmp_path / "serve.sqlite"
    subprocess.run(
        [sys.executable, "-c",
         _CHILD_SAVE.format(src=src, store=str(store_path))],
        check=True,
    )
    server = create_server(
        store_path,
        max_readers=1,
        lease_timeout=0.2,
        request_deadline=REQUEST_DEADLINE,
    )
    host, port = server.server_address[:2]
    thread = threading.Thread(
        target=lambda: server.serve_forever(poll_interval=0.05), daemon=True
    )
    thread.start()

    def get(path, timeout=10):
        connection = HTTPConnection(host, port, timeout=timeout)
        try:
            connection.request("GET", path)
            response = connection.getresponse()
            body = json.loads(response.read().decode("utf-8"))
            return response.status, body, dict(response.getheaders())
        finally:
            connection.close()

    plan = FaultPlan(
        [FaultRule(site=READER_SITE, action="delay", key="top_k",
                   seconds=1.2)]
    )
    shed_latencies, statuses = [], []
    try:
        assert get("/healthz")[1]["status"] == "ok"
        with installed(plan):
            stuck_result = {}

            def stuck():
                stuck_result["response"] = get("/top?k=2", timeout=30)

            holder = threading.Thread(target=stuck)
            holder.start()
            time.sleep(0.3)  # the slow query now owns the only reader
            for _ in range(4):
                started = time.perf_counter()
                status, body, headers = get("/top?k=2")
                latency = time.perf_counter() - started
                statuses.append(status)
                if status == 503:
                    shed_latencies.append(latency)
                    assert headers["Retry-After"] == str(
                        RETRY_AFTER_SECONDS
                    )
            degraded = get("/healthz")[1]["status"]
            holder.join(timeout=30)
        assert stuck_result["response"][0] == 200  # late, not lost
        assert statuses.count(503) >= 3, statuses
        worst = max(shed_latencies)
        assert worst <= SHED_LATENCY_BOUND, (
            f"shed responses must be fast, worst took {worst:.2f}s"
        )
        assert degraded == "degraded"
        status, metrics, _ = get("/metrics")
        assert metrics["counters"]["requests_shed"] >= 3
        assert metrics["pool"]["exhausted"] >= 3
        # zero hung connections: the drain needs no force-close
        started = time.perf_counter()
        clean = server.stop(timeout=10.0)
        drain_seconds = time.perf_counter() - started
        assert clean is True, "drain needed a force-close"
    finally:
        server.stop()
        thread.join(timeout=30)
    emit(
        "bench_chaos_serving",
        "\n".join(
            [
                "chaos gate — serving under an injected slow reader",
                f"{'requests':>18}: {len(statuses)} while saturated, "
                f"{statuses.count(503)} shed with 503",
                f"{'shed latency':>18}: worst {worst * 1000:.0f}ms "
                f"(bound {SHED_LATENCY_BOUND:.1f}s, deadline "
                f"{REQUEST_DEADLINE:.1f}s)",
                f"{'healthz':>18}: degraded while saturated, ok before",
                f"{'drain':>18}: clean in {drain_seconds:.2f}s, "
                "zero hung connections",
            ]
        ),
    )

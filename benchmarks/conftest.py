"""Shared fixtures for the benchmark harness.

Every table and figure of the paper's evaluation section has a benchmark
module here.  The graphs are scaled-down synthetic stand-ins for the
original crawls (see DESIGN.md, "Substitutions"); set the environment
variable ``REPRO_BENCH_SCALE`` to grow or shrink them (default 1.0).

Each benchmark prints the rows/series the corresponding table or figure
reports and also writes them to ``benchmarks/results/<name>.txt`` so the
output survives pytest's capture.
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

from repro.datasets.profiles import (
    citeseer_like,
    dblp_like,
    lastfm_like,
    small_dblp_like,
)

RESULTS_DIR = Path(__file__).parent / "results"


def bench_scale() -> float:
    """Benchmark scale factor, controlled by ``REPRO_BENCH_SCALE``."""
    return float(os.environ.get("REPRO_BENCH_SCALE", "1.0"))


@pytest.fixture(scope="session")
def results_dir() -> Path:
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    return RESULTS_DIR


@pytest.fixture(scope="session")
def emit(results_dir):
    """Print a report block and persist it under benchmarks/results/."""

    def _emit(name: str, text: str) -> None:
        print()
        print(text)
        (results_dir / f"{name}.txt").write_text(text + "\n", encoding="utf-8")

    return _emit


@pytest.fixture(scope="session")
def dblp_profile():
    return dblp_like(scale=bench_scale())


@pytest.fixture(scope="session")
def dblp_graph(dblp_profile):
    return dblp_profile.build()


@pytest.fixture(scope="session")
def lastfm_profile():
    return lastfm_like(scale=bench_scale())


@pytest.fixture(scope="session")
def lastfm_graph(lastfm_profile):
    return lastfm_profile.build()


@pytest.fixture(scope="session")
def citeseer_profile():
    return citeseer_like(scale=bench_scale())


@pytest.fixture(scope="session")
def citeseer_graph(citeseer_profile):
    return citeseer_profile.build()


@pytest.fixture(scope="session")
def small_dblp_profile():
    return small_dblp_like(scale=bench_scale())


@pytest.fixture(scope="session")
def small_dblp_graph(small_dblp_profile):
    return small_dblp_profile.build()

"""Table 4 — CiteSeer case study (top σ / ε / δ_lb attribute sets).

Paper finding: like DBLP, top-support sets are generic terms with low ε and
δ, while the top-ε and top-δ sets are recognisable research topics
(networking, caching, query optimisation) with ε in the 0.3–0.5 range and
δ_lb of the order of tens to hundreds.
"""

from repro.analysis.ranking import render_case_study_table
from repro.correlation.scpm import SCPM


def test_table4_citeseer_rankings(benchmark, emit, citeseer_profile, citeseer_graph):
    params = citeseer_profile.params
    result = benchmark.pedantic(
        lambda: SCPM(citeseer_graph, params).mine(), rounds=1, iterations=1
    )
    emit(
        "table4_citeseer",
        render_case_study_table(
            result, "Table 4 — CiteSeer-like", n=10, min_set_size=2
        ),
    )

    top_sigma = result.top_by_support(10, min_set_size=2)
    top_epsilon = result.top_by_epsilon(10, min_set_size=2)
    top_delta = result.top_by_delta(10, min_set_size=2)

    # 1. topical sets reach high epsilon (paper: 0.3-0.5)
    assert top_epsilon[0].epsilon > 0.2

    # 2. generic frequent pairs are much less correlated
    avg_eps_sigma = sum(r.epsilon for r in top_sigma) / len(top_sigma)
    assert top_epsilon[0].epsilon > 3 * max(avg_eps_sigma, 1e-9)

    # 3. top-delta values are well above 1 but smaller than DBLP's extremes
    assert top_delta[0].delta > 5

    # 4. planted networking topics dominate the top-epsilon table
    planted = {
        frozenset(c.attributes)
        for c in citeseer_profile.spec.communities
        if citeseer_graph.support(c.attributes) >= params.min_support
    }
    epsilon_sets = {frozenset(r.attributes) for r in top_epsilon}
    assert len(planted & epsilon_sets) >= 3

"""Incremental-update cost gate — update time scales with delta size.

The pitch of the evolving-graph layer (:mod:`repro.graph.evolve` +
:class:`~repro.correlation.incremental.IncrementalSCPM`) is that a small
edit costs a small re-mine: only the roots and branches whose chunk
footprint the edit touched are re-evaluated, everything else is reused.
This benchmark pins that claim with a CI-gated acceptance bar
(benchmark-trajectory job):

* the workload is the chunk-aligned patch grid
  (:func:`repro.datasets.evolving.patch_scenario`) — at scale 1.0 about
  100k vertices in ~98 single-chunk patches, one attribute per patch;
* the edit batch flips edges inside **one** patch (~1% of the graph);
* the patched result must be byte-identical to a full re-mine of the
  edited graph, and the update must cost **≤ 10% of the full re-mine**
  at full scale.  At the reduced CI scale (0.2 → ~20 patches) the fixed
  per-update overheads (vertical-db walk, null-model rebuild, memo
  scan) are a larger fraction of a much cheaper full mine, so the gate
  is a documented looser ≤ 25% — the measured ratio at that scale is
  ~5%, so both bars have real headroom.

The measured rows (initial mine, update, full re-mine, ratio, reuse
counters) are appended as one run block to ``BENCH_results.json`` so the
trajectory catches delta-path regressions across PRs.
"""

from __future__ import annotations

import platform
import time

from repro.correlation.incremental import IncrementalSCPM
from repro.correlation.parameters import SCPMParams
from repro.correlation.scpm import SCPM
from repro.datasets.evolving import patch_scenario

from conftest import bench_scale
from run_benchmarks import DEFAULT_OUTPUT, append_run

#: Full-scale bound: a ~1% edit must cost at most 10% of a full re-mine.
FULL_SCALE_RATIO = 0.10
#: Reduced-scale bound for CI (scale < 1.0): fixed overheads dominate a
#: cheaper full mine, so the bar is looser but still well above the
#: measured ratio.
SMALL_SCALE_RATIO = 0.25

PARAMS = SCPMParams(
    min_support=3,
    gamma=0.6,
    min_size=3,
    min_epsilon=0.0,
    top_k=3,
    engine="sparse",
)


def timed(operation) -> float:
    started = time.perf_counter()
    operation()
    return time.perf_counter() - started


def test_incremental_update_cost(emit):
    scale = bench_scale()
    num_patches = max(4, int(round(98 * scale)))
    scenario = patch_scenario(
        11, num_patches=num_patches, edges_per_vertex=2.0, edge_edits=64
    )
    edge_edits, _ = scenario.batches()[0]

    miner = IncrementalSCPM(scenario.build_handle(), PARAMS)
    initial_seconds = timed(miner.mine)
    update_seconds = timed(lambda: miner.update(edge_edits=edge_edits))
    stats = miner.last_update_stats

    edited = scenario.build_handle()
    edited.apply_edge_batch(edge_edits)
    box = {}
    full_seconds = timed(
        lambda: box.setdefault("result", SCPM(edited, PARAMS).mine())
    )
    ratio = update_seconds / full_seconds
    num_vertices = edited.num_vertices
    num_edges = edited.num_edges
    bound = FULL_SCALE_RATIO if scale >= 1.0 else SMALL_SCALE_RATIO

    emit(
        "bench_incremental_update",
        "\n".join(
            [
                "incremental update — delta cost vs full re-mine",
                f"{'graph':>22}: {num_vertices} vertices, {num_edges} edges, "
                f"{num_patches} patches",
                f"{'edit batch':>22}: {len(edge_edits)} edge edits in 1 patch "
                f"({stats.touched_chunks} chunk(s) touched)",
                f"{'initial mine':>22}: {initial_seconds:.2f}s",
                f"{'incremental update':>22}: {update_seconds:.3f}s",
                f"{'full re-mine':>22}: {full_seconds:.2f}s",
                f"{'ratio':>22}: {ratio:.3f} (bound {bound:.2f} "
                f"at scale {scale})",
                f"{'reuse':>22}: {stats.roots_reused}/{stats.roots_total} "
                f"roots, {stats.branches_reused}/{stats.branches_total} "
                f"branches, {stats.records_patched} records patched, "
                f"{stats.memo_evicted} memo entries evicted",
            ]
        ),
    )

    append_run(
        DEFAULT_OUTPUT,
        {
            "recorded_unix": round(time.time(), 3),
            "benchmark": "incremental_update",
            "scale": scale,
            "python": platform.python_version(),
            "entries": [
                {
                    "op": op,
                    "num_vertices": num_vertices,
                    "num_edges": num_edges,
                    "engine": "sparse",
                    "n_jobs": 1,
                    "schedule": None,
                    "seconds": round(seconds, 6),
                    **extra,
                }
                for op, seconds, extra in (
                    ("incremental_initial_mine", initial_seconds, {}),
                    (
                        "incremental_update",
                        update_seconds,
                        {
                            "edge_edits": len(edge_edits),
                            "roots_reused": stats.roots_reused,
                            "roots_total": stats.roots_total,
                            "branches_rerun": stats.branches_rerun,
                            "memo_evicted": stats.memo_evicted,
                        },
                    ),
                    (
                        "incremental_full_remine",
                        full_seconds,
                        {"update_over_full_ratio": round(ratio, 4)},
                    ),
                )
            ],
        },
    )

    # acceptance bars
    assert miner.result.fingerprint() == box["result"].fingerprint(), (
        "incremental update diverged from the full re-mine"
    )
    assert stats.roots_reused >= num_patches - 2, (
        f"a 1-patch edit must reuse nearly every root: {stats}"
    )
    assert ratio <= bound, (
        f"incremental update took {update_seconds:.3f}s = {ratio:.1%} of the "
        f"{full_seconds:.2f}s full re-mine (bound {bound:.0%} at scale {scale})"
    )

"""Figures 4, 7 and 9 — expected structural correlation vs support.

For each dataset the paper plots the simulation estimate ``sim-exp`` (with
its standard deviation) and the analytical upper bound ``max-exp`` for a
sweep of support values, and observes that (i) the bound dominates the
simulation, (ii) both grow with the support, and (iii) the bound has a
similar growth so it is usable for normalisation.
"""

import pytest

from repro.analysis.nullcurves import expected_epsilon_curve, null_curve_table


def _supports_for(graph, points=6):
    """Support sweep: roughly min_support .. |V|/2 in even steps."""
    lower = max(20, graph.num_vertices // 50)
    upper = graph.num_vertices // 2
    step = max(1, (upper - lower) // (points - 1))
    return list(range(lower, upper + 1, step))[:points]


def _run_curve(graph, params, benchmark):
    supports = _supports_for(graph)
    return benchmark.pedantic(
        lambda: expected_epsilon_curve(graph, params, supports, runs=10, seed=7),
        rounds=1,
        iterations=1,
    )


def _check_curve(curve):
    # max-exp upper-bounds sim-exp at every support
    for point in curve:
        assert point.max_exp >= point.sim_exp_mean - 1e-9
    # both are (weakly) monotone in the support
    max_values = [p.max_exp for p in curve]
    sim_values = [p.sim_exp_mean for p in curve]
    assert all(b >= a - 1e-9 for a, b in zip(max_values, max_values[1:]))
    assert sim_values[-1] >= sim_values[0] - 0.02
    # the largest supports see a non-trivial expectation (the curves "grow")
    assert max_values[-1] > max_values[0]


@pytest.mark.parametrize(
    "figure,profile_fixture,graph_fixture",
    [
        ("fig4_dblp", "dblp_profile", "dblp_graph"),
        ("fig7_lastfm", "lastfm_profile", "lastfm_graph"),
        ("fig9_citeseer", "citeseer_profile", "citeseer_graph"),
    ],
)
def test_expected_epsilon_curves(
    figure, profile_fixture, graph_fixture, request, benchmark, emit
):
    profile = request.getfixturevalue(profile_fixture)
    graph = request.getfixturevalue(graph_fixture)
    params = profile.params.quasi_clique_params()
    curve = _run_curve(graph, params, benchmark)
    emit(
        figure,
        null_curve_table(
            curve, title=f"{figure}: expected epsilon vs support ({profile.name})"
        ),
    )
    _check_curve(curve)

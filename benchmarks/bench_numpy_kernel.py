"""Numpy kernel backend benchmark — vectorized lanes vs big-int lanes.

Times :meth:`~repro.quasiclique.search.QuasiCliqueSearch.enumerate_maximal`
on a planted-community graph with the numpy counter-lane backend
(:mod:`repro.quasiclique.kernel_numpy`) against the big-int SWAR oracle
(:mod:`repro.quasiclique.kernel`), on a **node budget**: the differential
suite proves both backends walk the identical set-enumeration tree with
identical counter accounting, so capping the expanded-node count times the
same work on both sides.

The workload is the numpy backend's target regime: thousands of working
vertices, γ < 0.5 (no diameter bound), dense planted communities — wide
counter vectors where one SIMD row op replaces a whole big-int lane sweep.
``enumerate_maximal`` is used rather than ``covered_mask`` because it has
no greedy pre-pass: the timed region is almost pure kernel work, which
keeps the measured ratio stable on noisy CI machines.  Each side takes the
best of three runs for the same reason.  The node budget is floored at its
full-scale value — shrinking it would not leave the numpy-favoured regime
(the graph stays large) but would let fixed per-search overheads blur the
ratio.

The acceptance bar for this PR is a ≥ 3× wall-clock speedup; measured
best-of-three ratios on the development machine sit at 3.4–3.8×.  (On
small graphs the big-int backend wins instead — ``"auto"`` keeps it below
:data:`~repro.quasiclique.kernel.NUMPY_AUTO_MIN_VERTICES` working
vertices — and ``run_benchmarks.py`` records both backends' trajectory
rows.)
"""

from __future__ import annotations

import time

import pytest

from repro.datasets.synthetic import CommunitySpec, SyntheticSpec, generate
from repro.quasiclique.definitions import QuasiCliqueParams
from repro.quasiclique.kernel import numpy_available
from repro.quasiclique.search import QuasiCliqueSearch, SearchBudgetExceeded

from conftest import bench_scale

MIN_REQUIRED_SPEEDUP = 3.0

#: Expanded-node cap per timed run.  Scaled *up* by REPRO_BENCH_SCALE but
#: never down: the numpy-vs-bigint ratio needs enough nodes to amortize
#: per-search setup, and the graph (the expensive part) is fixed-size.
NODE_BUDGET = 700

#: Best-of-N timing repetitions per backend.
REPETITIONS = 3


def _build_graph():
    """Planted communities wide enough for uint16 numpy lanes to shine."""
    return generate(
        SyntheticSpec(
            num_vertices=5000,
            background_degree=2.0,
            vocabulary_size=10,
            attributes_per_vertex=0.5,
            communities=tuple(
                CommunitySpec(attributes=(f"community{j}",), size=200, density=0.45)
                for j in range(12)
            ),
            seed=5,
        )
    )


def _timed_enumeration(graph, params, budget, backend):
    search = QuasiCliqueSearch(
        graph, params, node_budget=budget, kernel_backend=backend
    )
    started = time.perf_counter()
    try:
        emitted = search.enumerate_maximal()
    except SearchBudgetExceeded:
        emitted = None
    return time.perf_counter() - started, search.stats, emitted


def test_numpy_kernel_speedup(emit):
    if not numpy_available():
        pytest.skip("numpy not importable; nothing to benchmark")
    graph = _build_graph()
    params = QuasiCliqueParams(gamma=0.45, min_size=4)
    budget = max(NODE_BUDGET, int(NODE_BUDGET * bench_scale()))

    bigint_seconds, numpy_seconds = [], []
    for _ in range(REPETITIONS):
        b_sec, b_stats, b_sets = _timed_enumeration(graph, params, budget, "bigint")
        n_sec, n_stats, n_sets = _timed_enumeration(graph, params, budget, "numpy")
        # identical work: same tree, same counter accounting, same answer
        assert n_stats.nodes_expanded == b_stats.nodes_expanded
        assert n_stats.counter_updates == b_stats.counter_updates
        assert n_sets == b_sets
        bigint_seconds.append(b_sec)
        numpy_seconds.append(n_sec)

    assert b_stats.kernel_backend_label() == "bigint"
    assert n_stats.kernel_backend_label() == "numpy(uint16)"

    speedup = min(bigint_seconds) / min(numpy_seconds)
    lines = [
        "Numpy kernel backend — maximal enumeration on planted communities",
        f"graph: {graph.num_vertices} vertices / {graph.num_edges} edges, "
        f"gamma={params.gamma} min_size={params.min_size} "
        f"node_budget={budget} best-of-{REPETITIONS}",
        f"{'backend':<18}{'seconds':>10}{'nodes':>10}{'updates':>12}",
        f"{'bigint':<18}{min(bigint_seconds):>10.3f}"
        f"{b_stats.nodes_expanded:>10}{b_stats.counter_updates:>12}",
        f"{'numpy(uint16)':<18}{min(numpy_seconds):>10.3f}"
        f"{n_stats.nodes_expanded:>10}{n_stats.counter_updates:>12}",
        f"speedup: {speedup:.2f}x (required ≥ {MIN_REQUIRED_SPEEDUP}x)",
    ]
    emit("bench_numpy_kernel", "\n".join(lines))
    assert speedup >= MIN_REQUIRED_SPEEDUP, (
        f"numpy kernel only {speedup:.2f}x faster than the big-int "
        f"backend (required {MIN_REQUIRED_SPEEDUP}x)"
    )

"""Sparse engine benchmark — index memory scaling and cross-engine parity.

Two reports:

* **Memory scaling** — sparse chunked-container index bytes vs the dense
  engine's O(|V|²/8) adjacency masks over growing vertex counts at constant
  average degree.  The sparse column is measured; the dense column uses
  :func:`repro.graph.engine.dense_index_payload_bytes` (one
  ``sys.getsizeof``-measured |V|-bit int per vertex — actually building the
  dense index at the top row would cost > 1 GB).  The acceptance bar is
  ≥ 10× at the 100k-vertex row.
* **Mining parity + speed** — the coverage search of a planted community on
  a 10k-vertex graph, run on both engines: results must match exactly,
  wall-clock is reported for context.

``REPRO_BENCH_SCALE`` scales the vertex counts.  The default 1.0 is the full
acceptance configuration (the memory table's 10x assertion only holds
there); CI runs the parity test alone at ``REPRO_BENCH_SCALE=0.2``, and a
laptop-quick full run works at e.g. 0.1 *without* the memory assertion
being meaningful.
"""

from __future__ import annotations

import time

from repro.datasets.synthetic import (
    CommunitySpec,
    SyntheticSpec,
    generate,
    random_edge_graph,
)
from repro.graph.engine import dense_index_payload_bytes
from repro.graph.sparseset import SparseGraphBitsetIndex
from repro.quasiclique.definitions import QuasiCliqueParams
from repro.quasiclique.search import QuasiCliqueSearch

from conftest import bench_scale

MIN_REQUIRED_MEMORY_RATIO = 10.0
AVERAGE_DEGREE = 6


def test_sparse_index_memory_scaling(emit):
    scale = bench_scale()
    sizes = [int(n * scale) for n in (12_500, 25_000, 50_000, 100_000)]
    rows = []
    final_ratio = 0.0
    for num_vertices in sizes:
        graph = random_edge_graph(
            num_vertices, AVERAGE_DEGREE * num_vertices // 2, seed=42
        )
        started = time.perf_counter()
        index = SparseGraphBitsetIndex.build(graph)
        build_seconds = time.perf_counter() - started
        sparse_mb = index.nbytes() / 1e6
        dense_mb = dense_index_payload_bytes(num_vertices) / 1e6
        final_ratio = dense_mb / sparse_mb
        rows.append(
            f"{num_vertices:>9}{graph.num_edges:>10}{dense_mb:>12.1f}"
            f"{sparse_mb:>12.1f}{final_ratio:>9.1f}x{build_seconds:>9.2f}s"
        )

    report = "\n".join(
        [
            "Sparse engine — adjacency index memory "
            f"(avg degree {AVERAGE_DEGREE}, scale {scale})",
            f"{'|V|':>9}{'|E|':>10}{'dense MB':>12}{'sparse MB':>12}"
            f"{'ratio':>10}{'build':>10}",
            *rows,
        ]
    )
    emit("sparse_engine_memory", report)
    if scale >= 1.0:  # the 10x bar is a full-scale (100k-vertex) property
        assert final_ratio >= MIN_REQUIRED_MEMORY_RATIO, report


def test_sparse_engine_mining_parity_and_speed(emit):
    graph = generate(
        SyntheticSpec(
            num_vertices=int(10_000 * bench_scale()),
            background_degree=6.0,
            vocabulary_size=40,
            zipf_exponent=0.8,
            attributes_per_vertex=4.0,
            communities=(
                CommunitySpec(attributes=("topicA",), size=400, density=0.5),
                CommunitySpec(attributes=("topicB",), size=30, density=0.8),
            ),
            popular_attributes=("popular0", "popular1"),
            popular_fraction=0.35,
            seed=42,
        )
    )
    params = QuasiCliqueParams(gamma=0.6, min_size=4)
    members = graph.vertices_with("topicA")

    outcomes = {}
    timings = {}
    for engine in ("dense", "sparse"):
        started = time.perf_counter()
        search = QuasiCliqueSearch(graph, params, vertices=members, engine=engine)
        covered = search.covered_vertices()
        timings[engine] = time.perf_counter() - started
        outcomes[engine] = covered

    report = "\n".join(
        [
            "Sparse engine — coverage search parity "
            f"({graph.num_vertices} vertices, working set {len(members)})",
            f"{'engine':<10}{'covered':>10}{'seconds':>10}",
            *(
                f"{engine:<10}{len(outcomes[engine]):>10}{timings[engine]:>9.2f}s"
                for engine in ("dense", "sparse")
            ),
        ]
    )
    emit("sparse_engine_parity", report)
    assert outcomes["sparse"] == outcomes["dense"], report

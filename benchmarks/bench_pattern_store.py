"""Pattern-store read-path load test — WAL concurrency and LRU warmth.

The serving tier's pitch is "mine once, serve millions": lookups against
a stored run must stay cheap and *stay up* while the next batch run is
being appended.  Two acceptance bars, both CI-gated (benchmark-trajectory
job):

* **concurrency** — ≥ 8 parallel reader threads issue
  ``patterns_with_vertex`` / ``top_k`` against the WAL store while a
  writer appends a second mining run, with **zero**
  ``database is locked`` errors and every snapshot complete;
* **LRU warmth** — repeated hot-pattern lookups served from the
  per-reader LRU are faster than the cold path that hits SQLite and the
  codec every time (measured with caching disabled).

The report prints save cost, cold/warm lookup throughput and the
concurrent-read aggregate so the trajectory catches read-path
regressions the way ``run_benchmarks.py`` pins the mine path.
"""

from __future__ import annotations

import sqlite3
import threading
import time

from repro.correlation.parameters import SCPMParams
from repro.correlation.scpm import SCPM
from repro.datasets.synthetic import random_attributed_graph
from repro.serve import PatternStoreReader
from repro.store import PatternStore

from conftest import bench_scale

NUM_READERS = 8
READ_SECONDS = 1.0
LOOKUP_ROUNDS = 30

PARAMS = SCPMParams(
    min_support=3, gamma=0.6, min_size=3, min_epsilon=0.1, top_k=6
)


def build_result(scale: float, seed: int = 7):
    graph = random_attributed_graph(
        num_vertices=max(24, int(56 * scale)),
        edge_probability=0.3,
        attributes=["a", "b", "c", "d", "e"],
        attribute_probability=0.45,
        seed=seed,
    )
    return SCPM(graph, PARAMS).mine()


def _pattern_ids(reader):
    result = reader.load_result(run_id=1)
    ids = []
    for pattern in result.patterns:
        vertex = next(iter(pattern.vertices))
        ids.extend(
            s.pattern_id for s in reader.patterns_with_vertex(vertex)
        )
    return sorted(set(ids))


def _time_lookups(reader, ids, rounds):
    started = time.perf_counter()
    for _ in range(rounds):
        for pattern_id in ids:
            reader.get_pattern(pattern_id)
    return time.perf_counter() - started


def test_pattern_store_read_path(tmp_path, emit):
    scale = bench_scale()
    path = tmp_path / "bench_store.sqlite"
    result = build_result(scale)
    assert result.patterns, "bench workload must mine patterns"

    started = time.perf_counter()
    with PatternStore(path) as store:
        store.save(result, params=PARAMS)
    save_seconds = time.perf_counter() - started

    # ---- cold vs LRU-warm point lookups -----------------------------
    with PatternStoreReader(path, cache_size=0) as cold_reader:
        ids = _pattern_ids(cold_reader)
        cold_seconds = _time_lookups(cold_reader, ids, LOOKUP_ROUNDS)
        assert cold_reader.cache.hits == 0  # caching really was disabled
    with PatternStoreReader(path, cache_size=4096) as warm_reader:
        _time_lookups(warm_reader, ids, 1)  # prime the LRU
        warm_seconds = _time_lookups(warm_reader, ids, LOOKUP_ROUNDS)
        assert warm_reader.cache.hits >= len(ids) * LOOKUP_ROUNDS

    lookups = len(ids) * LOOKUP_ROUNDS

    # ---- ≥8 concurrent readers against WAL with a live writer -------
    # The second run is mined up front: the race under test is
    # readers-vs-*writer*, not readers-vs-GIL-bound mining.
    second_result = build_result(scale, seed=11)
    lock_errors, reader_errors = [], []
    query_counts = [0] * NUM_READERS
    stop = threading.Event()

    def read_loop(reader_index):
        try:
            with PatternStoreReader(path) as reader:
                vertex = next(iter(result.patterns[0].vertices))
                while not stop.is_set():
                    reader.patterns_with_vertex(vertex)
                    reader.top_k(5)
                    query_counts[reader_index] += 2
        except sqlite3.OperationalError as error:
            lock_errors.append(repr(error))
        except BaseException as error:  # pragma: no cover — reporting
            reader_errors.append(repr(error))

    threads = [
        threading.Thread(target=read_loop, args=(i,), daemon=True)
        for i in range(NUM_READERS)
    ]
    concurrent_started = time.perf_counter()
    for thread in threads:
        thread.start()
    with PatternStore(path) as store:
        store.save(second_result)  # writer racing the readers
    time.sleep(max(0.0, READ_SECONDS - (time.perf_counter() - concurrent_started)))
    stop.set()
    for thread in threads:
        thread.join(timeout=30)
    concurrent_seconds = time.perf_counter() - concurrent_started
    total_queries = sum(query_counts)

    emit(
        "bench_pattern_store",
        "\n".join(
            [
                "pattern store read path — WAL serving under load",
                f"{'stored patterns':>22}: {len(result.patterns)}",
                f"{'save':>22}: {save_seconds:.3f}s",
                f"{'cold lookups':>22}: {lookups} in {cold_seconds:.3f}s "
                f"({lookups / cold_seconds:,.0f}/s)",
                f"{'LRU-warm lookups':>22}: {lookups} in {warm_seconds:.3f}s "
                f"({lookups / warm_seconds:,.0f}/s)",
                f"{'warm speedup':>22}: {cold_seconds / warm_seconds:.1f}x",
                f"{'concurrent readers':>22}: {NUM_READERS} threads, "
                f"{total_queries} queries in {concurrent_seconds:.2f}s "
                f"({total_queries / concurrent_seconds:,.0f}/s), "
                f"writer appended 1 run",
                f"{'lock errors':>22}: {len(lock_errors)}",
            ]
        ),
    )

    # acceptance bars
    assert not lock_errors, f"database-lock errors under load: {lock_errors}"
    assert not reader_errors, f"reader errors under load: {reader_errors}"
    assert all(count > 0 for count in query_counts), (
        f"every one of the {NUM_READERS} readers must make progress "
        f"against the live writer: {query_counts}"
    )
    assert warm_seconds < cold_seconds, (
        f"LRU-warm lookups ({warm_seconds:.3f}s) must beat the cold path "
        f"({cold_seconds:.3f}s)"
    )

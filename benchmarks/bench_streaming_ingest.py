"""Streaming ingestion benchmark — file→index peak memory vs the loader.

Both ingestion routes end at the same
:class:`~repro.graph.sparseset.SparseGraphBitsetIndex`; what differs is
what exists *on the way there*:

* **in-memory loader** — :func:`repro.graph.io.read_attributed_graph`
  materialises the full hashed ``AttributedGraph`` (adjacency sets,
  per-vertex attribute sets, inverted attribute index) and only then
  builds the sparse index, so its peak is graph + index;
* **streaming ingest** — :func:`repro.graph.streaming.stream_attributed_graph`
  folds the files straight into chunked containers, so its peak is the
  index plus per-line transients.

The report measures both peaks with ``tracemalloc`` on disk-only graphs
produced by :func:`repro.datasets.synthetic.write_random_attributed_files`
(attribute-heavy, the paper's DBLP/LastFM shape: popular attributes on a
sparse background graph) at a quarter scale and at full scale, so the
table also shows the loader's peak *growing* with |V|+|E| while the
streamed peak stays pinned to the index it returns.

Acceptance bars (full scale, ``REPRO_BENCH_SCALE=1`` → 100k vertices):

* streamed ingest peak ≥ 5× below the in-memory loader's peak;
* streamed peak ≤ 1.5× the bytes of the index it hands back (bounded
  ingestion overhead) — asserted at every scale.

Smoke scales keep a relaxed ratio assertion (the hashed-graph overhead
legitimately shrinks with the graph).
"""

from __future__ import annotations

import gc
import time
import tracemalloc

from repro.datasets.synthetic import write_random_attributed_files
from repro.graph.io import read_attributed_graph
from repro.graph.streaming import stream_attributed_graph

from conftest import bench_scale

MIN_FULL_SCALE_RATIO = 5.0
MIN_SMOKE_RATIO = 1.5
MAX_STREAMED_PEAK_OVER_INDEX = 1.5

BASE_VERTICES = 100_000
EDGES_PER_VERTEX = 1.5
NUM_ATTRIBUTES = 50
ATTRIBUTE_FRACTION = 0.3


def _measure(build):
    """Run ``build`` under tracemalloc; return (result, peak_bytes, secs)."""
    gc.collect()
    tracemalloc.start()
    started = time.perf_counter()
    result = build()
    seconds = time.perf_counter() - started
    _, peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()
    return result, peak, seconds


def _ingest_row(tmp_path, num_vertices):
    """Generate one on-disk graph and measure both ingestion routes."""
    edge_path = tmp_path / f"g{num_vertices}.edges"
    attr_path = tmp_path / f"g{num_vertices}.attrs"
    write_random_attributed_files(
        edge_path,
        attr_path,
        num_vertices,
        int(EDGES_PER_VERTEX * num_vertices),
        num_attributes=NUM_ATTRIBUTES,
        attribute_fraction=ATTRIBUTE_FRACTION,
        seed=5,
    )

    handle, streamed_peak, streamed_seconds = _measure(
        lambda: stream_attributed_graph(edge_path, attr_path)
    )
    index_bytes = handle.bitset_index("sparse").nbytes()
    num_edges = handle.num_edges
    del handle
    gc.collect()

    def load_in_memory():
        graph = read_attributed_graph(edge_path, attr_path)
        graph.bitset_index("sparse")
        return graph

    graph, loader_peak, loader_seconds = _measure(load_in_memory)
    assert graph.num_edges == num_edges  # both routes load the same graph
    del graph
    gc.collect()

    return {
        "num_vertices": num_vertices,
        "num_edges": num_edges,
        "index_mb": index_bytes / 1e6,
        "streamed_peak_mb": streamed_peak / 1e6,
        "loader_peak_mb": loader_peak / 1e6,
        "streamed_seconds": streamed_seconds,
        "loader_seconds": loader_seconds,
        "ratio": loader_peak / streamed_peak,
        "peak_over_index": streamed_peak / index_bytes,
    }


def test_streaming_ingest_peak_memory(tmp_path, emit):
    scale = bench_scale()
    sizes = sorted({max(int(n * scale), 1_000) for n in (25_000, BASE_VERTICES)})
    rows = [_ingest_row(tmp_path, size) for size in sizes]

    lines = [
        "streaming ingest vs in-memory loader — tracemalloc peak (MB)",
        f"{'|V|':>9}{'|E|':>9}{'index':>9}{'streamed':>10}{'loader':>10}"
        f"{'ratio':>8}{'peak/idx':>10}",
    ]
    for row in rows:
        lines.append(
            f"{row['num_vertices']:>9}{row['num_edges']:>9}"
            f"{row['index_mb']:>9.1f}{row['streamed_peak_mb']:>10.1f}"
            f"{row['loader_peak_mb']:>10.1f}{row['ratio']:>8.2f}"
            f"{row['peak_over_index']:>10.2f}"
        )
    lines.append(
        f"(streamed {rows[-1]['streamed_seconds']:.1f}s, loader "
        f"{rows[-1]['loader_seconds']:.1f}s at the top row)"
    )
    emit("bench_streaming_ingest", "\n".join(lines))

    for row in rows:
        # Bounded ingestion overhead: the streamed peak is the index it
        # returns plus parsing transients, at every scale.
        assert row["peak_over_index"] <= MAX_STREAMED_PEAK_OVER_INDEX, row

    top = rows[-1]
    if top["num_vertices"] >= BASE_VERTICES:
        # Full acceptance bar: the hashed graph the loader materialises
        # dwarfs the index both routes produce.
        assert top["ratio"] >= MIN_FULL_SCALE_RATIO, (
            f"streamed peak {top['streamed_peak_mb']:.1f} MB vs loader "
            f"{top['loader_peak_mb']:.1f} MB — below the "
            f"{MIN_FULL_SCALE_RATIO}x acceptance margin"
        )
    else:
        assert top["ratio"] >= MIN_SMOKE_RATIO, top

    if len(rows) > 1:
        # The loader's peak grows with |V|+|E| far faster than the
        # streamed peak's own (index-bound) growth.
        assert rows[-1]["loader_peak_mb"] > rows[0]["loader_peak_mb"] * 2

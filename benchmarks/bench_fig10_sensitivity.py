"""Figure 10 — parameter sensitivity of the average ε and δ.

The paper sweeps γ_min, min_size and σ_min on SmallDBLP and reports the
average structural correlation ε and normalized structural correlation δ of
the complete output ("global") and of the top-10 % attribute sets.  The
qualitative findings reproduced here:

* more restrictive quasi-clique parameters (higher γ_min / min_size) lower
  the average ε but raise the average δ — dense subgraphs become less
  expected under the null model;
* a higher σ_min raises the average ε (frequent sets cover more vertices)
  but lowers the average δ (their expected correlation is also higher);
* the top-10 % averages always dominate the global averages.
"""

import pytest

from repro.analysis.sensitivity import run_sensitivity_sweep, sensitivity_table

SWEEPS = {
    "fig10a_epsilon_vs_gamma": ("gamma", [0.5, 0.6, 0.7, 0.8, 0.9]),
    "fig10b_epsilon_vs_min_size": ("min_size", [5, 6, 7, 8]),
    "fig10c_epsilon_vs_min_support": ("min_support", [25, 50, 100, 150]),
}


@pytest.mark.parametrize("figure", sorted(SWEEPS))
def test_fig10_sensitivity(figure, benchmark, emit, small_dblp_profile, small_dblp_graph):
    parameter, values = SWEEPS[figure]
    base = small_dblp_profile.params
    points = benchmark.pedantic(
        lambda: run_sensitivity_sweep(small_dblp_graph, base, parameter, values),
        rounds=1,
        iterations=1,
    )
    emit(
        figure.replace("epsilon_vs", "avg_vs"),
        sensitivity_table(points, title=f"figure 10: averages vs {parameter}"),
    )

    first, last = points[0], points[-1]
    if parameter in ("gamma", "min_size"):
        # Figure 10(a,b): average epsilon decreases ...
        assert last.average_epsilon <= first.average_epsilon + 1e-9
        # Figure 10(d,e): ... while the average delta increases
        assert last.average_delta >= first.average_delta * 0.9
    else:
        # Figure 10(f): the average delta decreases as sigma_min grows, because
        # frequent attribute sets also have a high expected correlation.
        assert last.average_delta <= first.average_delta + 1e-9
        # Figure 10(c): the paper observes a mild *increase* of the average
        # epsilon with sigma_min on the real SmallDBLP; on the synthetic
        # stand-in the planted topics sit at mid supports, so the global
        # average stays roughly flat instead (see EXPERIMENTS.md).  Assert it
        # does not collapse rather than a strict increase.
        assert last.average_epsilon >= 0.5 * first.average_epsilon

    # the top-10% averages dominate the global averages everywhere
    for point in points:
        assert point.average_epsilon_top10 >= point.average_epsilon - 1e-12
        assert point.average_delta_top10 >= point.average_delta - 1e-12

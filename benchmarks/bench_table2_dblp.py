"""Table 2 — DBLP case study (top σ / ε / δ_lb attribute sets).

Paper finding: top-support attribute sets are generic terms with low
structural correlation; top-ε and top-δ sets are recognisable topics, and
their δ_lb values are orders of magnitude above 1.
"""

from repro.analysis.ranking import render_case_study_table
from repro.correlation.scpm import SCPM


def test_table2_dblp_rankings(benchmark, emit, dblp_profile, dblp_graph):
    params = dblp_profile.params
    result = benchmark.pedantic(
        lambda: SCPM(dblp_graph, params).mine(), rounds=1, iterations=1
    )
    emit(
        "table2_dblp",
        render_case_study_table(
            result, "Table 2 — DBLP-like", n=10, min_set_size=2
        ),
    )

    top_sigma = result.top_by_support(10, min_set_size=2)
    top_epsilon = result.top_by_epsilon(10, min_set_size=2)
    top_delta = result.top_by_delta(10, min_set_size=2)

    # the paper's qualitative claims
    planted = {
        frozenset(c.attributes)
        for c in dblp_profile.spec.communities
        if dblp_graph.support(c.attributes) >= params.min_support
    }
    # 1. topical attribute sets dominate the top-delta ranking
    delta_sets = {frozenset(r.attributes) for r in top_delta}
    assert len(planted & delta_sets) >= 3

    # 2. generic high-support sets have much lower epsilon than the top-eps sets
    avg_eps_sigma = sum(r.epsilon for r in top_sigma) / len(top_sigma)
    avg_eps_top = sum(r.epsilon for r in top_epsilon) / len(top_epsilon)
    assert avg_eps_top > 2 * avg_eps_sigma

    # 3. top-delta values are far above 1 (strong statistical significance)
    assert top_delta[0].delta > 100

    # 4. high support does not imply high structural correlation: the most
    #    frequent pair is not among the top-epsilon sets
    assert frozenset(top_sigma[0].attributes) not in {
        frozenset(r.attributes) for r in top_epsilon
    }

"""Incremental-counter kernel benchmark — coverage search vs the oracle.

Times :meth:`~repro.quasiclique.search.QuasiCliqueSearch.covered_mask`
on planted-community graphs with the incremental-counter kernel
(:mod:`repro.quasiclique.kernel`) against the historical from-scratch
mask recomputation (``use_incremental_kernel=False``), on a **node
budget**: both loops visit the identical set-enumeration tree (the
differential suite proves it), so capping the expanded-node count times
the same work on both sides regardless of how long the full enumeration
would run.

The workload is the kernel's target regime: γ < 0.5 disables the
diameter bound, so candidate sets stay fat and the oracle re-popcounts
every candidate at every node and every fixpoint round — exactly the
sweeps the kernel's lane vectors replace with O(|V|/64)-word operations.
The acceptance bar for this PR is a ≥ 2× wall-clock speedup; in practice
the kernel wins by ~4–5×.  (On γ ≥ 0.5 workloads the automatic kernel
selection keeps whichever loop is faster per search — see
``KERNEL_AUTO_MIN_VERTICES`` — and the lattice-wide
:class:`~repro.quasiclique.memo.CoverageMemo` removes repeated searches
altogether; those paths are covered by ``run_benchmarks.py``.)
"""

from __future__ import annotations

import time

from repro.datasets.synthetic import CommunitySpec, SyntheticSpec, generate
from repro.quasiclique.definitions import QuasiCliqueParams
from repro.quasiclique.search import QuasiCliqueSearch, SearchBudgetExceeded

from conftest import bench_scale

MIN_REQUIRED_SPEEDUP = 2.0

#: Expanded-node cap per timed run (scaled by REPRO_BENCH_SCALE).
NODE_BUDGET = 100_000


def _build_graph():
    """Planted communities whose density sits near the γ threshold."""
    return generate(
        SyntheticSpec(
            num_vertices=300,
            background_degree=2.0,
            vocabulary_size=10,
            attributes_per_vertex=0.5,
            communities=tuple(
                CommunitySpec(attributes=(f"community{j}",), size=50, density=0.35)
                for j in range(4)
            ),
            seed=5,
        )
    )


def _timed_coverage(graph, params, budget, use_kernel):
    search = QuasiCliqueSearch(
        graph,
        params,
        node_budget=budget,
        use_incremental_kernel=use_kernel,
    )
    started = time.perf_counter()
    try:
        covered = search.covered_mask()
    except SearchBudgetExceeded:
        covered = None
    return time.perf_counter() - started, search.stats, covered


def test_search_kernel_speedup(emit):
    graph = _build_graph()
    params = QuasiCliqueParams(gamma=0.45, min_size=4)
    budget = max(10_000, int(NODE_BUDGET * bench_scale()))

    oracle_seconds, oracle_stats, oracle_covered = _timed_coverage(
        graph, params, budget, use_kernel=False
    )
    kernel_seconds, kernel_stats, kernel_covered = _timed_coverage(
        graph, params, budget, use_kernel=True
    )

    # identical work: same tree, same prunes, same (partial) answer
    assert kernel_stats.nodes_expanded == oracle_stats.nodes_expanded
    assert kernel_stats.pruned_hopeless == oracle_stats.pruned_hopeless
    assert kernel_covered == oracle_covered
    assert kernel_stats.counter_updates > 0
    assert oracle_stats.counter_updates == 0

    speedup = oracle_seconds / kernel_seconds
    lines = [
        "Incremental-counter kernel — coverage search on planted communities",
        f"graph: {graph.num_vertices} vertices / {graph.num_edges} edges, "
        f"gamma={params.gamma} min_size={params.min_size} "
        f"node_budget={budget}",
        f"{'loop':<24}{'seconds':>10}{'nodes':>10}{'updates':>12}",
        f"{'from-scratch oracle':<24}{oracle_seconds:>10.3f}"
        f"{oracle_stats.nodes_expanded:>10}{oracle_stats.counter_updates:>12}",
        f"{'incremental kernel':<24}{kernel_seconds:>10.3f}"
        f"{kernel_stats.nodes_expanded:>10}{kernel_stats.counter_updates:>12}",
        f"speedup: {speedup:.2f}x (required ≥ {MIN_REQUIRED_SPEEDUP}x)",
    ]
    emit("bench_search_kernel", "\n".join(lines))
    assert speedup >= MIN_REQUIRED_SPEEDUP, (
        f"incremental kernel only {speedup:.2f}x faster than the "
        f"from-scratch oracle (required {MIN_REQUIRED_SPEEDUP}x)"
    )

#!/usr/bin/env python
"""Run the engine benchmarks and record a perf-trajectory entry.

Times the core mining operations over a grid of engines, worker counts and
schedules on a deterministic synthetic workload, then **appends** one run
block to a ``BENCH_results.json`` trajectory file.  Each run block carries
the grid entries ``(op, num_vertices, num_edges, engine, n_jobs, schedule,
seconds)`` plus enough environment metadata (python version, usable cores,
scale) to judge comparability — so future PRs can diff the trajectory and
catch hot-path regressions instead of re-deriving baselines by hand.

Usage::

    PYTHONPATH=src python benchmarks/run_benchmarks.py            # full size
    PYTHONPATH=src python benchmarks/run_benchmarks.py --scale 0.2  # CI smoke
    PYTHONPATH=src python benchmarks/run_benchmarks.py --output /tmp/b.json
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import tempfile
import threading
import time
from pathlib import Path

from repro.correlation.parameters import SCPMParams
from repro.correlation.scpm import mine_scpm
from repro.correlation.structural import structural_correlation
from repro.datasets.synthetic import CommunitySpec, SyntheticSpec, generate
from repro.itemsets.eclat import EclatConfig, EclatMiner
from repro.quasiclique.definitions import QuasiCliqueParams
from repro.quasiclique.kernel import numpy_available
from repro.quasiclique.search import QuasiCliqueSearch
from repro.serve import PatternStoreReader
from repro.store import PatternStore

DEFAULT_OUTPUT = Path(__file__).parent / "BENCH_results.json"


def build_graph(scale: float):
    """Deterministic attribute-community workload, sized by ``scale``."""
    num_communities = max(2, int(round(6 * scale)))
    block = max(12, int(round(40 * scale)))
    communities = tuple(
        CommunitySpec(
            attributes=tuple(f"c{j}_a{i}" for i in range(4)),
            size=block + 2 * j,
            density=0.5,
        )
        for j in range(num_communities)
    )
    return generate(
        SyntheticSpec(
            num_vertices=max(120, int(round(700 * scale))),
            background_degree=2.5,
            vocabulary_size=20,
            attributes_per_vertex=0.5,
            communities=communities,
            seed=1234,
        )
    ), block


def timed(operation) -> float:
    started = time.perf_counter()
    operation()
    return time.perf_counter() - started


def entry(op, graph, seconds, engine="auto", n_jobs=1, schedule=None, **extra):
    """One grid row; ``extra`` carries op-specific counters (memo, kernel)."""
    row = {
        "op": op,
        "num_vertices": graph.num_vertices,
        "num_edges": graph.num_edges,
        "engine": engine,
        "n_jobs": n_jobs,
        "schedule": schedule,
        "seconds": round(seconds, 6),
    }
    row.update(extra)
    return row


def run_grid(scale: float, jobs_grid, engines, schedules):
    graph, block = build_graph(scale)
    min_support = block - 2
    entries = []

    for engine in engines:
        config = EclatConfig(min_support=min_support)
        # use_bitsets engages the engine under test (a frozenset run would
        # ignore `engine` entirely) and warms the graph's bitset index, so
        # the coverage rows below time the search, not index construction.
        seconds = timed(
            lambda: EclatMiner(config, use_bitsets=True, engine=engine).mine_all(graph)
        )
        entries.append(entry("eclat_mine_all", graph, seconds, engine=engine))

    qc = QuasiCliqueParams(gamma=0.6, min_size=4)
    heaviest = f"c{0}_a{0}"
    for engine in engines:
        seconds = timed(
            lambda: structural_correlation(graph, (heaviest,), qc, engine=engine)
        )
        entries.append(entry("quasiclique_coverage", graph, seconds, engine=engine))

    # Incremental-counter kernel vs the from-scratch oracle on the same
    # whole-graph coverage search (the kernel-op trajectory; the ≥2×
    # acceptance bar lives in bench_search_kernel.py's harder workload).
    for use_kernel, op in ((False, "coverage_kernel_oracle"), (True, "coverage_kernel_incremental")):
        # engine pinned so the recorded label stays true at any --scale
        search = QuasiCliqueSearch(
            graph, qc, engine="dense", use_incremental_kernel=use_kernel
        )
        seconds = timed(search.covered_mask)
        entries.append(
            entry(
                op,
                graph,
                seconds,
                engine="dense",
                nodes_expanded=search.stats.nodes_expanded,
                counter_updates=search.stats.counter_updates,
            )
        )

    # Counter-lane backend rows: the same dense coverage search once per
    # kernel backend, each row labelled with the resolved backend/dtype
    # (``bigint`` / ``numpy(uint8)`` / ``numpy(uint16)``) so the
    # trajectory attributes kernel perf moves to the lane representation.
    # The ≥3× acceptance bar lives in bench_numpy_kernel.py's wide
    # workload; this graph is deliberately the small trajectory one.
    for backend in ("bigint", "numpy"):
        if backend == "numpy" and not numpy_available():
            continue
        # kernel forced: the γ=0.6 auto rule would keep the oracle on this
        # small graph and leave the backend label empty
        search = QuasiCliqueSearch(
            graph,
            qc,
            engine="dense",
            use_incremental_kernel=True,
            kernel_backend=backend,
        )
        seconds = timed(search.covered_mask)
        entries.append(
            entry(
                "coverage_kernel_backend",
                graph,
                seconds,
                engine="dense",
                kernel_backend=search.stats.kernel_backend_label(),
                nodes_expanded=search.stats.nodes_expanded,
                counter_updates=search.stats.counter_updates,
            )
        )

    for engine in engines:
        for n_jobs in jobs_grid:
            for schedule in schedules if n_jobs > 1 else (schedules[0],):
                params = SCPMParams(
                    min_support=min_support,
                    gamma=0.6,
                    min_size=4,
                    min_epsilon=0.2,
                    top_k=5,
                    engine=engine,
                    n_jobs=n_jobs,
                    schedule=schedule,
                )
                box = {}
                seconds = timed(
                    lambda: box.setdefault(
                        "result", mine_scpm(graph, params, collect_patterns=False)
                    )
                )
                counters = box["result"].counters
                entries.append(
                    entry(
                        "scpm_mine",
                        graph,
                        seconds,
                        engine=engine,
                        n_jobs=n_jobs,
                        schedule=schedule,
                        memo_hits=counters.coverage_memo_hits,
                        memo_misses=counters.coverage_memo_misses,
                        kernel_counter_updates=counters.kernel_counter_updates,
                        kernel_backends=dict(counters.kernel_backends),
                    )
                )

    entries.extend(store_entries(scale))
    entries.extend(http_entries(scale))
    return entries


# Pattern collection (the store needs full patterns, unlike the
# collect_patterns=False scpm_mine rows above) enumerates top-k
# quasi-cliques per qualified set, and that cost explodes with the
# community block size: ~0.8s at scale 0.2, ~3s at 0.35, minutes at
# 0.5+.  The store rows time the store, not the mine, so the feeder
# workload is capped here.
STORE_WORKLOAD_MAX_SCALE = 0.35


def store_entries(scale, readers=8, reader_queries=150):
    """Pattern-store rows: save cost plus the serving read path.

    One mine with patterns feeds a throwaway WAL store; the rows time
    the atomic save, cold vs LRU-warm point lookups, the materialised
    top-k listing, and ``readers`` concurrent reader threads issuing a
    fixed query budget (wall seconds recorded; lock errors would fail
    the gating benchmark, ``bench_pattern_store.py``, before this runs).
    """
    graph, block = build_graph(min(scale, STORE_WORKLOAD_MAX_SCALE))
    params = SCPMParams(
        min_support=block - 2, gamma=0.6, min_size=4, min_epsilon=0.2, top_k=5
    )
    result = mine_scpm(graph, params)
    entries = []
    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "bench_store.sqlite"
        with PatternStore(path) as store:
            seconds = timed(lambda: store.save(result, params=params))
        entries.append(
            entry("store_save", graph, seconds, num_patterns=len(result.patterns))
        )

        with PatternStoreReader(path, cache_size=0) as reader:
            ids = [
                stored.pattern_id
                for record in result.qualified
                for stored in reader.patterns_with_attributes(
                    record.attributes, mode="all"
                )
            ]
            ids = sorted(set(ids)) or []
            rounds = 20
            seconds = timed(
                lambda: [reader.get_pattern(i) for _ in range(rounds) for i in ids]
            )
        entries.append(
            entry("store_get_pattern_cold", graph, seconds,
                  lookups=len(ids) * rounds)
        )
        with PatternStoreReader(path, cache_size=4096) as reader:
            for pattern_id in ids:
                reader.get_pattern(pattern_id)  # prime the LRU
            seconds = timed(
                lambda: [reader.get_pattern(i) for _ in range(rounds) for i in ids]
            )
            entries.append(
                entry("store_get_pattern_warm", graph, seconds,
                      lookups=len(ids) * rounds, lru_hits=reader.cache.hits)
            )
            seconds = timed(lambda: [reader.top_k(10) for _ in range(rounds)])
            entries.append(entry("store_top_k", graph, seconds, lookups=rounds))

        def reader_load():
            with PatternStoreReader(path) as reader:
                for index in range(reader_queries):
                    if index % 2:
                        reader.top_k(5)
                    else:
                        reader.patterns_with_attributes(
                            result.qualified[0].attributes, mode="any"
                        )

        threads = [
            threading.Thread(target=reader_load, daemon=True)
            for _ in range(readers)
        ]
        started = time.perf_counter()
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        entries.append(
            entry(
                "store_concurrent_read",
                graph,
                time.perf_counter() - started,
                readers=readers,
                queries=readers * reader_queries,
            )
        )
    return entries


def http_entries(scale, clients=8, client_requests=60):
    """HTTP serving rows: the ``scpm serve`` stack over a real socket.

    The same feeder workload as :func:`store_entries` is served by
    :mod:`repro.serve.http` on an ephemeral loopback port; the rows time
    warm sequential request throughput on one keep-alive connection and
    ``clients`` concurrent connections each issuing a fixed request
    budget (zero-5xx gating lives in ``bench_http_serve.py``).
    """
    import json as json_module
    from http.client import HTTPConnection

    from repro.serve.http import create_server

    graph, block = build_graph(min(scale, STORE_WORKLOAD_MAX_SCALE))
    params = SCPMParams(
        min_support=block - 2, gamma=0.6, min_size=4, min_epsilon=0.2, top_k=5
    )
    result = mine_scpm(graph, params)
    entries = []

    def get(connection, request_path):
        connection.request("GET", request_path)
        response = connection.getresponse()
        return response.status, json_module.loads(response.read())

    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "bench_store.sqlite"
        with PatternStore(path) as store:
            store.save(result, params=params)
        server = create_server(path)
        host, port = server.server_address[:2]
        server_thread = threading.Thread(
            target=lambda: server.serve_forever(poll_interval=0.05),
            daemon=True,
        )
        server_thread.start()
        try:
            probe = HTTPConnection(host, port, timeout=10)
            status, top = get(probe, "/top?k=5")
            label = top["entries"][0]["label"].split()[0]
            paths = (
                "/patterns/1",
                "/top?k=5",
                f"/patterns?attributes={label}&mode=any",
                "/runs",
            )
            for request_path in paths:  # warm the pool's LRU
                get(probe, request_path)
            rounds = 30
            seconds = timed(
                lambda: [
                    get(probe, request_path)
                    for _ in range(rounds)
                    for request_path in paths
                ]
            )
            probe.close()
            entries.append(
                entry("http_sequential_read", graph, seconds,
                      requests=rounds * len(paths))
            )

            def client_load():
                connection = HTTPConnection(host, port, timeout=10)
                for index in range(client_requests):
                    get(connection, paths[index % len(paths)])
                connection.close()

            client_threads = [
                threading.Thread(target=client_load, daemon=True)
                for _ in range(clients)
            ]
            started = time.perf_counter()
            for client_thread in client_threads:
                client_thread.start()
            for client_thread in client_threads:
                client_thread.join()
            entries.append(
                entry(
                    "http_concurrent_read",
                    graph,
                    time.perf_counter() - started,
                    clients=clients,
                    requests=clients * client_requests,
                )
            )
        finally:
            server.stop()
            server_thread.join(timeout=30)
    return entries


def append_run(output: Path, run: dict) -> dict:
    trajectory = {"version": 1, "runs": []}
    if output.exists():
        try:
            loaded = json.loads(output.read_text(encoding="utf-8"))
            if isinstance(loaded, dict) and isinstance(loaded.get("runs"), list):
                trajectory = loaded
        except json.JSONDecodeError:
            pass  # corrupted trajectory: start fresh rather than crash
    trajectory["runs"].append(run)
    output.write_text(
        json.dumps(trajectory, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )
    return trajectory


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", type=float, default=1.0,
                        help="workload scale factor (default 1.0)")
    parser.add_argument("--output", type=Path, default=DEFAULT_OUTPUT,
                        help=f"trajectory file (default {DEFAULT_OUTPUT})")
    parser.add_argument("--jobs", type=int, nargs="+", default=[1, 2, 4],
                        help="n_jobs grid for the SCPM runs")
    parser.add_argument("--engines", nargs="+", default=["dense", "sparse"],
                        help="vertex-set engines to time")
    parser.add_argument("--schedules", nargs="+", default=["steal", "stripe"],
                        help="parallel schedules to time (first is also "
                             "used for the sequential rows)")
    args = parser.parse_args(argv)

    entries = run_grid(args.scale, args.jobs, args.engines, args.schedules)
    run = {
        "recorded_unix": round(time.time(), 3),
        "scale": args.scale,
        "python": platform.python_version(),
        "usable_cores": len(os.sched_getaffinity(0))
        if hasattr(os, "sched_getaffinity")
        else (os.cpu_count() or 1),
        "entries": entries,
    }
    trajectory = append_run(args.output, run)

    width = max(len(e["op"]) for e in entries) + 2
    print(f"{'op':<{width}}{'engine':>8}{'n_jobs':>8}{'schedule':>10}{'seconds':>10}")
    for e in entries:
        print(
            f"{e['op']:<{width}}{e['engine']:>8}{e['n_jobs']:>8}"
            f"{str(e['schedule'] or '-'):>10}{e['seconds']:>10.3f}"
        )
    print(f"\nwrote run #{len(trajectory['runs'])} to {args.output}")
    return 0


if __name__ == "__main__":
    sys.exit(main())

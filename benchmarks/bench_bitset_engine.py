"""Bitset engine micro-benchmark — the intersection hot path.

Measures the two innermost operations of the mining stack on a synthetic
graph with ≥ 10k vertices (the scale of the paper's Table 2 workloads):

* the **Eclat tidset join** ``V(S_i) ∩ V(S_j)`` plus the support popcount
  (Algorithm 2's inner loop, also the Theorem-3 vertex-pruning
  intersection), and
* the **quasi-clique degree check** ``|N(v) ∩ Q|`` over a working-set
  restricted adjacency (the dominant operation of the set-enumeration
  search, executed at every node for every member and candidate — the
  engine runs it in the search's compact local id space, which is what is
  timed here).

Each is timed over hashed ``frozenset`` operands (the seed representation)
and over the bitset engine's int masks.  The acceptance bar for the engine
is a ≥ 3× speedup on this hot path; in practice the masks win by a much
wider margin because CPython executes ``&`` and ``bit_count`` over machine
words in C.
"""

from __future__ import annotations

import time
from itertools import combinations

from repro.datasets.synthetic import CommunitySpec, SyntheticSpec, generate

MIN_REQUIRED_SPEEDUP = 3.0


def _build_graph():
    return generate(
        SyntheticSpec(
            num_vertices=10_000,
            background_degree=6.0,
            vocabulary_size=40,
            zipf_exponent=0.8,
            attributes_per_vertex=4.0,
            communities=(
                CommunitySpec(attributes=("topicA",), size=400, density=0.5),
                CommunitySpec(attributes=("topicB",), size=30, density=0.8),
            ),
            popular_attributes=("popular0", "popular1"),
            popular_fraction=0.35,
            seed=42,
        )
    )


def _time_loop(operation, reps: int) -> float:
    started = time.perf_counter()
    for _ in range(reps):
        operation()
    return time.perf_counter() - started


def _timed_pairs(pairs, op, reps):
    def run():
        for a, b in pairs:
            op(a, b)

    run()  # warm up
    return _time_loop(run, reps) / reps


def test_bitset_engine_speedup(emit):
    graph = _build_graph()
    # This benchmark measures the *dense* engine's int masks; "auto" would
    # resolve to sparse at this |V|/density and time chunked containers.
    index = graph.bitset_index("dense")

    # ---- Eclat tidset join: the 12 most frequent attributes, all pairs ----
    frequent = sorted(
        graph.attributes(), key=lambda a: -len(graph.vertices_with(a))
    )[:12]
    set_tidsets = {a: graph.vertices_with(a) for a in frequent}
    mask_tidsets = {a: index.attribute_mask(a) for a in frequent}
    pairs = list(combinations(frequent, 2))

    set_pairs = [(set_tidsets[a], set_tidsets[b]) for a, b in pairs]
    mask_pairs = [(mask_tidsets[a], mask_tidsets[b]) for a, b in pairs]
    reps = 20
    frozen_join = _timed_pairs(set_pairs, lambda a, b: len(a & b), reps)
    bitset_join = _timed_pairs(
        mask_pairs, lambda a, b: (a & b).bit_count(), reps
    )
    join_speedup = frozen_join / bitset_join

    # ---- quasi-clique degree check over the planted community's local space ----
    # The search relabels the working vertices V(S) to dense local ids and
    # restricts adjacency to them; every node expansion then intersects
    # those restricted neighbourhoods with the candidate set Q.
    members = sorted(graph.vertices_with("topicA"))
    keep = frozenset(members)
    local_id = {v: i for i, v in enumerate(members)}
    set_adjacency = {v: graph.neighbor_set(v) & keep for v in members}
    mask_adjacency = [
        sum(1 << local_id[u] for u in set_adjacency[v]) for v in members
    ]
    # candidate sets of shrinking size, as the enumeration produces them
    candidate_sets = [frozenset(members[:: 1 << level]) for level in range(4)]
    set_probes = [(set_adjacency[v], q) for q in candidate_sets for v in q]
    mask_probes = [
        (mask_adjacency[local_id[v]], sum(1 << local_id[u] for u in q))
        for q in candidate_sets
        for v in q
    ]
    frozen_degree = _timed_pairs(set_probes, lambda n, q: len(n & q), reps)
    bitset_degree = _timed_pairs(
        mask_probes, lambda n, q: (n & q).bit_count(), reps
    )
    degree_speedup = frozen_degree / bitset_degree

    report = "\n".join(
        [
            "Bitset engine — intersection hot path "
            f"({graph.num_vertices} vertices, {graph.num_edges} edges)",
            f"{'operation':<28}{'frozenset':>12}{'bitset':>12}{'speedup':>10}",
            f"{'Eclat tidset join':<28}{frozen_join * 1e3:>10.2f}ms"
            f"{bitset_join * 1e3:>10.2f}ms{join_speedup:>9.1f}x",
            f"{'quasi-clique degree check':<28}{frozen_degree * 1e3:>10.2f}ms"
            f"{bitset_degree * 1e3:>10.2f}ms{degree_speedup:>9.1f}x",
        ]
    )
    emit("bitset_engine", report)

    assert join_speedup >= MIN_REQUIRED_SPEEDUP, report
    assert degree_speedup >= MIN_REQUIRED_SPEEDUP, report

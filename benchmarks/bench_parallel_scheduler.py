"""Work-stealing scheduler benchmark — skewed branches and transfer cost.

Two claims of the parallel subsystem are asserted here:

1. **Work stealing beats static striping on skewed branch trees.**  The
   workload plants several 4-attribute communities: each contributes four
   consecutive first-level roots whose subtree sizes fall off as
   ``7, 3, 1, 0`` evaluations, so static striping at ``n_jobs=4`` lands
   *every* dominant subtree on the same worker (the skew ROADMAP calls
   out), while the shared-queue scheduler spreads the second-level prefix
   classes across all workers.  Per-task durations measured in the workers
   are replayed through a deterministic 4-worker schedule simulator —
   makespan(stripe) / makespan(steal) must be ≥ 2×.  The simulator, not
   raw wall clock, carries the assertion so the benchmark holds on CI
   runners with few or noisy cores (the steal run keeps all workers
   busy, so time-slicing inflates every task duration by roughly the same
   factor and the makespan *ratio* is preserved); the real parallel-phase
   wall-clock ratio is always reported, and asserted too when
   ``REPRO_BENCH_ASSERT_WALL=1`` is set on a host with ≥ 4 dedicated
   cores (opt-in, so shared CI runners don't become a timing-flake gate).

2. **Graph transfer does not scale with the task count.**  The payload is
   serialized exactly once per mining run however many tasks the schedule
   produces (fanout depth 1 vs depth 2 with single-task batches differ by
   >2× in task count), workers attach it once each, and each task
   submission stays orders of magnitude smaller than the payload.
"""

from __future__ import annotations

import heapq
import os
import time
from typing import Dict, List, Tuple

from repro.correlation.parameters import SCPMParams
from repro.correlation.scpm import SCPM
from repro.datasets.synthetic import CommunitySpec, SyntheticSpec, generate

MIN_REQUIRED_SPEEDUP = 2.0
JOBS = 4

#: Marginal density keeps every coverage search non-trivial but bounded —
#: well above the quasi-clique γ would cover instantly, far below it would
#: prune instantly.
COMMUNITY_DENSITY = 0.45
NUM_COMMUNITIES = 8


def _build_skewed_graph():
    """Communities of 4 attributes on one shared block each.

    All four attributes of a community share one tidset, so every subset
    is frequent and evaluation costs are uniform within a community; the
    Eclat prefix tree then gives the first root of each 4-attribute group
    the dominant subtree.  Distinct block sizes keep the support ordering
    (and therefore the root layout) deterministic.
    """
    communities = tuple(
        CommunitySpec(
            attributes=tuple(f"c{j}_a{i}" for i in range(4)),
            size=84 + 2 * j,
            density=COMMUNITY_DENSITY,
        )
        for j in range(NUM_COMMUNITIES)
    )
    return generate(
        SyntheticSpec(
            num_vertices=900,
            background_degree=2.0,
            vocabulary_size=0,
            attributes_per_vertex=0.0,
            communities=communities,
            seed=97,
        )
    )


def _params(**changes) -> SCPMParams:
    base = SCPMParams(
        min_support=80,
        gamma=0.6,
        min_size=4,
        min_epsilon=0.2,
        top_k=5,
        n_jobs=JOBS,
        schedule="steal",
        fanout_depth=2,
        transfer="shared_memory",
    )
    return base.with_changes(**changes) if changes else base


def _mine(graph, **changes) -> Tuple[SCPM, float]:
    miner = SCPM(
        graph,
        _params(**changes),
        collect_patterns=False,
        measure_task_bytes=True,
    )
    started = time.perf_counter()
    miner.mine()
    return miner, time.perf_counter() - started


def simulate_stripe_makespan(durations: Dict[Tuple, float], jobs: int) -> float:
    """Static striping: root ``r`` belongs to worker ``r % jobs`` and the
    worker runs the whole subtree (the PR-1 assignment)."""
    roots = sorted({key[0] for key in durations})
    loads = [0.0] * jobs
    for root in roots:
        loads[root % jobs] += sum(
            seconds for key, seconds in durations.items() if key[0] == root
        )
    return max(loads)


def simulate_steal_makespan(durations: Dict[Tuple, float], jobs: int) -> float:
    """Greedy list scheduling of the steal task graph on ``jobs`` workers.

    Level tasks are ready at t=0; a root's subtree tasks become ready when
    its level task finishes (the dependency the real scheduler enforces);
    the heaviest ready task always goes to the next idle worker.
    """
    roots = sorted({key[0] for key in durations})
    level = {r: durations[(r, 0, 0)] for r in roots}
    subtrees = {
        r: sorted(
            (s for k, s in durations.items() if k[0] == r and k[1] == 1),
            reverse=True,
        )
        for r in roots
    }
    ready: List[Tuple[float, Tuple]] = sorted(
        ((level[r], ("level", r)) for r in roots), reverse=True
    )
    workers = [0.0] * jobs
    running: List[Tuple[float, int, Tuple]] = []
    now = makespan = 0.0
    while ready or running:
        while ready and len(running) < jobs:
            seconds, task = ready.pop(0)
            start = max(min(workers), now)
            index = workers.index(min(workers))
            workers[index] = start + seconds
            heapq.heappush(running, (start + seconds, index, task))
        finished_at, _, task = heapq.heappop(running)
        now = finished_at
        makespan = max(makespan, finished_at)
        if task[0] == "level":
            ready.extend((s, ("subtree", task[1])) for s in subtrees[task[1]])
            ready.sort(reverse=True)
    return makespan


def test_steal_beats_stripe_on_skewed_branches(emit):
    graph = _build_skewed_graph()
    graph.bitset_index(_params().engine)  # build the index outside the timing

    steal_miner, steal_wall = _mine(graph)
    stripe_miner, stripe_wall = _mine(graph, schedule="stripe")

    durations = steal_miner.last_task_durations
    assert durations, "steal run did not go through the scheduler"
    stripe_makespan = simulate_stripe_makespan(durations, JOBS)
    steal_makespan = simulate_steal_makespan(durations, JOBS)
    simulated_speedup = stripe_makespan / steal_makespan

    cores = len(os.sched_getaffinity(0)) if hasattr(os, "sched_getaffinity") else (
        os.cpu_count() or 1
    )
    phase_ratio = (
        stripe_miner.last_parallel_seconds / steal_miner.last_parallel_seconds
    )

    report = "\n".join(
        [
            "Work-stealing scheduler — skew-branched communities "
            f"({graph.num_vertices} vertices, {NUM_COMMUNITIES} communities, "
            f"n_jobs={JOBS}, {cores} usable cores)",
            f"{'metric':<38}{'stripe':>12}{'steal':>12}{'ratio':>8}",
            f"{'simulated 4-worker makespan':<38}"
            f"{stripe_makespan:>11.2f}s{steal_makespan:>11.2f}s"
            f"{simulated_speedup:>7.2f}x",
            f"{'measured parallel phase':<38}"
            f"{stripe_miner.last_parallel_seconds:>11.2f}s"
            f"{steal_miner.last_parallel_seconds:>11.2f}s{phase_ratio:>7.2f}x",
            f"{'measured total wall':<38}"
            f"{stripe_wall:>11.2f}s{steal_wall:>11.2f}s"
            f"{stripe_wall / steal_wall:>7.2f}x",
            f"tasks: {len(durations)}, "
            f"batches: {steal_miner.last_scheduler_stats.batches_submitted}",
        ]
    )
    emit("parallel_scheduler", report)

    assert simulated_speedup >= MIN_REQUIRED_SPEEDUP, report
    if os.environ.get("REPRO_BENCH_ASSERT_WALL") == "1" and cores >= JOBS:
        # opt-in: on a dedicated >=4-core host the wall clock must show
        # the win too
        assert phase_ratio >= MIN_REQUIRED_SPEEDUP * 0.85, report


def test_graph_transfer_constant_in_task_count(emit):
    graph = _build_skewed_graph()
    graph.bitset_index(_params().engine)

    # coarse schedule: one task per first-level root
    coarse_miner, _ = _mine(graph, fanout_depth=1)
    # fine schedule: second-level fan-out, no batching — many more tasks
    fine_miner, _ = _mine(graph, fanout_depth=2, task_batch_size=1)

    coarse = coarse_miner.last_scheduler_stats
    fine = fine_miner.last_scheduler_stats
    assert fine.tasks_submitted > 2 * coarse.tasks_submitted

    report = "\n".join(
        [
            "One-time payload transfer — independence from task count",
            f"{'schedule':<28}{'tasks':>8}{'payload pickles':>16}"
            f"{'payload bytes':>14}{'max task bytes':>15}",
            f"{'fanout_depth=1':<28}{coarse.tasks_submitted:>8}"
            f"{coarse.transfer.serializations:>16}"
            f"{coarse.transfer.payload_bytes:>14}{coarse.max_batch_bytes:>15}",
            f"{'fanout_depth=2, batch=1':<28}{fine.tasks_submitted:>8}"
            f"{fine.transfer.serializations:>16}"
            f"{fine.transfer.payload_bytes:>14}{fine.max_batch_bytes:>15}",
        ]
    )
    emit("parallel_transfer", report)

    # the graph is pickled once per run — never once per task
    assert coarse.transfer.serializations == 1, report
    assert fine.transfer.serializations == 1, report
    # task submissions carry only indices and candidate states, not the graph
    assert coarse.max_batch_bytes * 20 < coarse.transfer.payload_bytes, report
    assert fine.max_batch_bytes * 20 < fine.transfer.payload_bytes, report

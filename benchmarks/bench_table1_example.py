"""Table 1 / Figure 1 — the paper's running example.

Regenerates the complete set of structural correlation patterns of the
Figure-1 graph with σ_min = 3, γ_min = 0.6, min_size = 4 and ε_min = 0.5 and
checks it is exactly the seven rows of Table 1.
"""

from repro.analysis.ranking import render_pattern_table
from repro.correlation.naive import NaiveMiner
from repro.correlation.parameters import SCPMParams
from repro.correlation.scpm import SCPM
from repro.datasets.example import TABLE1_PATTERNS, paper_example_graph

PARAMS = SCPMParams(
    min_support=3, gamma=0.6, min_size=4, min_epsilon=0.5, top_k=10
)


def _pattern_set(result):
    return {
        (pattern.attributes, frozenset(pattern.vertices))
        for pattern in result.patterns
    }


EXPECTED = {
    (tuple(sorted(attrs)), frozenset(vertices)) for attrs, vertices in TABLE1_PATTERNS
}


def test_table1_scpm(benchmark, emit):
    graph = paper_example_graph()
    result = benchmark(lambda: SCPM(graph, PARAMS).mine())
    assert _pattern_set(result) == EXPECTED
    emit("table1_example", render_pattern_table(result, title="Table 1 — example graph"))


def test_table1_naive(benchmark):
    graph = paper_example_graph()
    result = benchmark(lambda: NaiveMiner(graph, PARAMS).mine())
    assert _pattern_set(result) == EXPECTED

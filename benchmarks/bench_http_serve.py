"""HTTP serving-tier load test — concurrent clients over a real socket.

``bench_pattern_store.py`` gates the in-process read path; this gate
covers the full ``scpm serve`` stack above it — routing, JSON bodies,
keep-alive connections, the reader pool and the metrics layer — under
the same "mine once, serve millions" pitch.  Acceptance bars, CI-gated
(benchmark-trajectory job):

* **concurrency** — ≥ 8 keep-alive clients hammer the four lookup
  endpoints while a writer appends a second mining run, with **zero**
  5xx responses, zero client-side errors and every client making
  progress;
* **warm cache** — after the load, the pool's aggregated LRU hit ratio
  is positive and the server's own ``/metrics`` agrees that no request
  ever became a 500.

The report prints sequential and concurrent HTTP throughput plus the
pool/metrics aggregates so the trajectory catches serving-tier
regressions (slow JSON encoding, per-request reader churn, lock
contention) the way the store benchmark pins the reader beneath it.
"""

from __future__ import annotations

import json
import threading
import time
from http.client import HTTPConnection

from repro.correlation.parameters import SCPMParams
from repro.correlation.scpm import SCPM
from repro.datasets.synthetic import random_attributed_graph
from repro.serve.http import create_server
from repro.store import PatternStore

from conftest import bench_scale

NUM_CLIENTS = 8
LOAD_SECONDS = 1.0
SEQUENTIAL_ROUNDS = 40

PARAMS = SCPMParams(
    min_support=3, gamma=0.6, min_size=3, min_epsilon=0.1, top_k=6
)


def build_result(scale: float, seed: int = 7):
    graph = random_attributed_graph(
        num_vertices=max(24, int(56 * scale)),
        edge_probability=0.3,
        attributes=["a", "b", "c", "d", "e"],
        attribute_probability=0.45,
        seed=seed,
    )
    return SCPM(graph, PARAMS).mine()


def _get(connection, path):
    connection.request("GET", path)
    response = connection.getresponse()
    body = response.read()
    return response.status, json.loads(body.decode("utf-8"))


def test_http_serving_under_load(tmp_path, emit):
    scale = bench_scale()
    path = tmp_path / "bench_serve.sqlite"
    result = build_result(scale)
    assert result.patterns, "bench workload must mine patterns"
    with PatternStore(path) as store:
        store.save(result, params=PARAMS)

    server = create_server(path)
    host, port = server.server_address[:2]
    thread = threading.Thread(
        target=lambda: server.serve_forever(poll_interval=0.05), daemon=True
    )
    thread.start()
    try:
        # ---- warm sequential throughput on one keep-alive client ----
        probe = HTTPConnection(host, port, timeout=10)
        status, top = _get(probe, "/top?k=5")
        assert status == 200 and top["entries"]
        label = top["entries"][0]["label"].split()[0]
        paths = (
            "/patterns/1",
            "/top?k=5",
            f"/patterns?attributes={label}&mode=any",
            "/runs",
        )
        for p in paths:  # prime the pool's LRU before timing
            _get(probe, p)
        started = time.perf_counter()
        for _ in range(SEQUENTIAL_ROUNDS):
            for p in paths:
                status, _ = _get(probe, p)
                assert status == 200
        sequential_seconds = time.perf_counter() - started
        sequential_requests = SEQUENTIAL_ROUNDS * len(paths)
        probe.close()

        # ---- ≥8 concurrent clients racing a live writer -------------
        second_result = build_result(scale, seed=11)
        request_counts = [0] * NUM_CLIENTS
        bad_statuses, client_errors = [], []
        stop = threading.Event()

        def client_loop(index):
            try:
                connection = HTTPConnection(host, port, timeout=10)
                while not stop.is_set():
                    for p in paths:
                        status, _ = _get(connection, p)
                        if status >= 500:
                            bad_statuses.append((p, status))
                        request_counts[index] += 1
                connection.close()
            except BaseException as error:  # pragma: no cover — reporting
                client_errors.append(repr(error))

        threads = [
            threading.Thread(target=client_loop, args=(i,), daemon=True)
            for i in range(NUM_CLIENTS)
        ]
        concurrent_started = time.perf_counter()
        for worker in threads:
            worker.start()
        with PatternStore(path) as store:
            store.save(second_result)  # writer racing the HTTP clients
        time.sleep(
            max(0.0, LOAD_SECONDS - (time.perf_counter() - concurrent_started))
        )
        stop.set()
        for worker in threads:
            worker.join(timeout=30)
        concurrent_seconds = time.perf_counter() - concurrent_started
        total_requests = sum(request_counts)

        check = HTTPConnection(host, port, timeout=10)
        status, metrics = _get(check, "/metrics")
        assert status == 200
        status, runs = _get(check, "/runs")
        assert status == 200
        check.close()
    finally:
        server.stop()
        thread.join(timeout=30)

    pool = metrics["pool"]
    emit(
        "bench_http_serve",
        "\n".join(
            [
                "scpm serve — HTTP serving tier under load",
                f"{'stored patterns':>22}: {len(result.patterns)}",
                f"{'sequential':>22}: {sequential_requests} requests in "
                f"{sequential_seconds:.3f}s "
                f"({sequential_requests / sequential_seconds:,.0f}/s)",
                f"{'concurrent clients':>22}: {NUM_CLIENTS} threads, "
                f"{total_requests} requests in {concurrent_seconds:.2f}s "
                f"({total_requests / concurrent_seconds:,.0f}/s), "
                f"writer appended 1 run",
                f"{'5xx responses':>22}: {metrics['errors_5xx']}",
                f"{'pool readers':>22}: {pool['readers']} "
                f"(hit ratio {pool['hit_ratio']:.2f})",
            ]
        ),
    )

    # acceptance bars
    assert not client_errors, f"client errors under load: {client_errors}"
    assert not bad_statuses, f"5xx responses under load: {bad_statuses}"
    assert metrics["errors_5xx"] == 0, metrics
    assert all(count > 0 for count in request_counts), (
        f"every one of the {NUM_CLIENTS} clients must make progress "
        f"against the live writer: {request_counts}"
    )
    assert len(runs["runs"]) == 2  # the appended run became visible
    assert pool["hit_ratio"] > 0.0, (
        f"the serving tier must answer repeated lookups from a warm "
        f"LRU: {pool}"
    )

"""Figure 8 — runtime of SCPM-BFS, SCPM-DFS and the Naive algorithm.

The paper varies γ_min, min_size, σ_min, ε_min, δ_min and the top-k value on
the SmallDBLP dataset and reports the runtime of the three algorithms.  The
absolute seconds are hardware- and implementation-dependent (the original is
multi-threaded C++ on a 16-core Xeon); what the reproduction asserts is the
*shape* of the figure:

* both SCPM variants are at least as fast as the naive baseline overall, and
  SCPM-DFS clearly beats it at the default setting;
* making the thresholds more selective (higher γ_min, min_size, σ_min,
  ε_min, δ_min) never makes SCPM substantially slower and generally helps;
* the naive algorithm does not benefit from ε_min/δ_min (it has no pruning).
"""

import pytest

from repro.analysis.performance import (
    run_parameter_sweep,
    runtimes_by_algorithm,
    sweep_table,
    total_runtime,
)

SWEEPS = {
    "fig8a_gamma": ("gamma", [0.5, 0.6, 0.7, 0.8, 1.0]),
    "fig8b_min_size": ("min_size", [5, 6, 7, 8]),
    "fig8c_min_support": ("min_support", [25, 50, 100, 150]),
    "fig8d_min_epsilon": ("min_epsilon", [0.1, 0.15, 0.2, 0.25]),
    "fig8e_min_delta": ("min_delta", [1, 10, 20, 40]),
}

ALGOS = ("scpm-dfs", "scpm-bfs", "naive")


@pytest.mark.parametrize("figure", sorted(SWEEPS))
def test_fig8_parameter_sweeps(figure, benchmark, emit, small_dblp_profile, small_dblp_graph):
    parameter, values = SWEEPS[figure]
    base = small_dblp_profile.params
    points = benchmark.pedantic(
        lambda: run_parameter_sweep(
            small_dblp_graph, base, parameter, values, algorithms=ALGOS
        ),
        rounds=1,
        iterations=1,
    )
    emit(figure, sweep_table(points, title=f"{figure}: runtime vs {parameter}"))

    grouped = runtimes_by_algorithm(points)
    # SCPM variants beat the naive baseline over the whole sweep
    assert total_runtime(points, "scpm-dfs") < total_runtime(points, "naive")
    assert total_runtime(points, "scpm-bfs") < total_runtime(points, "naive")
    # the most selective setting is never slower than the least selective one
    # by more than a small factor (pruning helps or is neutral)
    for algorithm in ("scpm-dfs", "scpm-bfs"):
        runtimes = grouped[algorithm]
        assert runtimes[-1] <= runtimes[0] * 1.5 + 0.05


def test_fig8f_top_k(benchmark, emit, small_dblp_profile, small_dblp_graph):
    """Figure 8(f): runtime vs k for SCPM-DFS (the naive baseline is flat in k)."""
    base = small_dblp_profile.params
    values = [1, 2, 4, 8, 16]
    points = benchmark.pedantic(
        lambda: run_parameter_sweep(
            small_dblp_graph, base, "top_k", values, algorithms=("scpm-dfs", "naive")
        ),
        rounds=1,
        iterations=1,
    )
    emit("fig8f_top_k", sweep_table(points, title="fig8f: runtime vs k"))

    scpm = [p for p in points if p.algorithm == "scpm-dfs"]
    naive = [p for p in points if p.algorithm == "naive"]
    # SCPM with a small k is faster than the naive complete enumeration
    assert scpm[0].runtime_seconds < naive[0].runtime_seconds
    # the naive algorithm's work does not depend on k (same evaluations)
    assert len({p.attribute_sets_evaluated for p in naive}) == 1
    # SCPM runtime does not shrink when k grows (more patterns to extract)
    assert scpm[-1].runtime_seconds >= scpm[0].runtime_seconds * 0.8

"""Setup shim kept for environments without the ``wheel`` package.

``pip install -e .`` with modern pip builds an editable wheel, which this
offline environment cannot do (no ``wheel`` distribution is available), so
the legacy ``setup.py develop`` path is used instead.  All project metadata
lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()

"""Mining a large on-disk graph through the streaming ingestion pipeline.

Walkthrough of the file → stream → miner path:

1. generate a synthetic attributed graph *straight to disk* (it never
   exists in memory) with ``write_random_attributed_files``;
2. stream the files into a ``StreamedGraphHandle`` — the sparse bitset
   index is built in bounded memory, no hashed ``AttributedGraph`` is
   ever materialised — and mine it with SCPM (optionally in parallel);
3. show the equivalent one-liner (``mine_scpm_files``) and CLI command,
   and compare peak ingestion memory against the classic in-memory
   loader.

Run with::

    python examples/large_graph_streaming.py [num_vertices]

The default 20k-vertex graph keeps the run under a minute; pass e.g.
``100000`` to reproduce the benchmark-scale gap (see
``benchmarks/bench_streaming_ingest.py``).
"""

import sys
import tempfile
import tracemalloc
from pathlib import Path

from repro import SCPM, SCPMParams, mine_scpm_files
from repro.datasets.synthetic import write_random_attributed_files
from repro.graph.io import read_attributed_graph
from repro.graph.streaming import stream_attributed_graph

PARAMS = SCPMParams(
    min_support=400,     # sigma_min — only the popular attributes survive
    gamma=0.5,           # quasi-clique density
    min_size=3,          # quasi-clique minimum size
    min_epsilon=0.0,     # report every surviving attribute set
    max_attribute_set_size=1,  # keep the demo quick: size-1 sets only
    engine="sparse",     # the index the streaming ingest builds natively
    n_jobs=1,            # set >1 (or -1) for the parallel scheduler
)


def main() -> None:
    num_vertices = int(sys.argv[1]) if len(sys.argv) > 1 else 20_000
    workdir = Path(tempfile.mkdtemp(prefix="scpm-streaming-"))
    edge_path = workdir / "big.edges"
    attr_path = workdir / "big.attrs"

    # 1. A graph that only ever exists on disk (batched writer, O(batch)
    #    memory): sparse background edges + popular attributes.
    write_random_attributed_files(
        edge_path,
        attr_path,
        num_vertices=num_vertices,
        num_edges=int(1.5 * num_vertices),
        num_attributes=12,
        attribute_fraction=0.08,
        seed=11,
    )
    print(f"wrote {edge_path.name} ({edge_path.stat().st_size / 1e6:.1f} MB) "
          f"and {attr_path.name} ({attr_path.stat().st_size / 1e6:.1f} MB) "
          f"under {workdir}")

    # 2. Stream the files into the sparse index and mine the handle.
    tracemalloc.start()
    handle = stream_attributed_graph(edge_path, attr_path)
    _, streamed_peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()
    print(f"\nstreamed: {handle!r}")
    print(f"ingestion peak: {streamed_peak / 1e6:.1f} MB "
          f"(index itself: {handle.bitset_index('sparse').nbytes() / 1e6:.1f} MB)")

    result = SCPM(handle, PARAMS).mine()
    print(f"\nSCPM on the streamed handle: "
          f"{result.counters.attribute_sets_evaluated} attribute sets in "
          f"{result.counters.elapsed_seconds:.2f}s")
    for record in sorted(result.evaluated, key=lambda r: -r.support)[:5]:
        print(f"   {record.label():8s} sigma={record.support:6d} "
              f"epsilon={record.epsilon:.3f} delta={record.delta:.2f}")

    # ... which is exactly what the one-liner and the CLI do:
    #
    #     result = mine_scpm_files(edge_path, attr_path, PARAMS)
    #
    #     python -m repro mine --edges big.edges --attributes big.attrs \
    #         --streaming --engine sparse --min-support 400 --gamma 0.5 \
    #         --min-size 3 --max-attribute-set-size 1
    #
    assert mine_scpm_files is not None  # imported for the reader

    # 3. The same files through the classic loader, for the memory gap.
    tracemalloc.start()
    graph = read_attributed_graph(edge_path, attr_path)
    graph.bitset_index("sparse")
    _, loader_peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()
    print(f"\nin-memory loader peak: {loader_peak / 1e6:.1f} MB "
          f"({loader_peak / streamed_peak:.1f}x the streamed ingest)")
    assert graph.num_edges == handle.num_edges


if __name__ == "__main__":
    main()

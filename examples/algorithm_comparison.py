"""Compare SCPM-DFS, SCPM-BFS and the naive baseline on one graph.

Small-scale version of the paper's performance study (Figure 8): runs the
three algorithms on the SmallDBLP-style synthetic graph with the default
parameters and reports runtime and the amount of work each one did.

Run with::

    python examples/algorithm_comparison.py [scale]
"""

import sys

from repro import small_dblp_like
from repro.analysis.performance import ALGORITHMS, run_algorithm
from repro.analysis.reporting import format_table


def main() -> None:
    scale = float(sys.argv[1]) if len(sys.argv) > 1 else 1.0
    profile = small_dblp_like(scale=scale)
    graph = profile.build()
    print(
        f"{profile.name}: {graph.num_vertices} vertices, {graph.num_edges} edges, "
        f"sigma_min={profile.params.min_support}, gamma={profile.params.gamma}, "
        f"min_size={profile.params.min_size}"
    )

    rows = []
    for algorithm in ALGORITHMS:
        result = run_algorithm(graph, profile.params, algorithm)
        rows.append(
            (
                algorithm,
                result.counters.elapsed_seconds,
                result.counters.attribute_sets_evaluated,
                len(result.qualified),
                len(result.patterns),
            )
        )
    print()
    print(
        format_table(
            headers=("algorithm", "runtime_s", "attr_sets_evaluated", "qualified", "patterns"),
            rows=rows,
            title="algorithm comparison (Figure 8 setting)",
        )
    )
    fastest = min(rows, key=lambda r: r[1])
    slowest = max(rows, key=lambda r: r[1])
    print(
        f"\n{fastest[0]} is {slowest[1] / max(fastest[1], 1e-9):.1f}x faster than "
        f"{slowest[0]} on this graph; the gap widens with graph size and with "
        "denser, larger communities (full enumeration pays a combinatorial price)."
    )


if __name__ == "__main__":
    main()

"""Case study: research topics and related-work clusters in a citation graph.

Mirrors the paper's CiteSeer analysis (Section 4.1.3): vertices are papers,
edges citations, attributes abstract terms.  Besides the ranking tables the
script also demonstrates the two null models of Section 2.1.3 — the
simulation estimate sim-exp and the analytical upper bound max-exp — for a
sweep of support values (the data behind Figure 9).

Run with::

    python examples/citation_clusters.py [scale]
"""

import sys

from repro import SCPM, citeseer_like
from repro.analysis.nullcurves import expected_epsilon_curve, null_curve_table
from repro.analysis.ranking import render_case_study_table


def main() -> None:
    scale = float(sys.argv[1]) if len(sys.argv) > 1 else 0.5
    profile = citeseer_like(scale=scale)
    graph = profile.build()
    print(f"{profile.name}: {graph.num_vertices} papers, {graph.num_edges} citations")

    result = SCPM(graph, profile.params).mine()
    print()
    print(render_case_study_table(result, "citation network", n=10, min_set_size=2))

    # expected structural correlation under the null models (Figure 9)
    supports = [graph.num_vertices // 20, graph.num_vertices // 10, graph.num_vertices // 4]
    curve = expected_epsilon_curve(
        graph, profile.params.quasi_clique_params(), supports, runs=10, seed=7
    )
    print()
    print(null_curve_table(curve, title="expected epsilon under the null models"))
    print(
        "\nmax-exp upper-bounds sim-exp at every support, and both grow with "
        "the support — the property the delta normalisation relies on."
    )


if __name__ == "__main__":
    main()

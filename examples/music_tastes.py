"""Case study: do musical tastes explain friendships?

Mirrors the paper's LastFm analysis (Section 4.1.2) on the synthetic social
music network: vertices are users, edges friendships, attributes the artists
each user listens to.  The interesting finding is negative-ish: the most
popular artists have the highest raw structural correlation simply because
they are everywhere, but once normalised by the null model (δ) they are
unremarkable — niche tastes are the ones slightly more correlated with
communities than chance predicts.

Run with::

    python examples/music_tastes.py [scale]
"""

import sys

from repro import SCPM, lastfm_like
from repro.analysis.ranking import top_delta_rows, top_epsilon_rows, top_support_rows


def show(rows, title):
    print(f"\n{title}")
    for row in rows:
        print(
            f"  {row.attribute_set:30s} sigma={row.support:5d} "
            f"epsilon={row.epsilon:.3f} delta={row.delta:.2f}"
        )


def main() -> None:
    scale = float(sys.argv[1]) if len(sys.argv) > 1 else 0.6
    profile = lastfm_like(scale=scale)
    graph = profile.build()
    print(f"{profile.name}: {graph.num_vertices} users, {graph.num_edges} friendships")
    print(profile.description)

    result = SCPM(graph, profile.params, collect_patterns=False).mine()

    show(top_support_rows(result, 8), "most listened-to (top support)")
    show(top_epsilon_rows(result, 8), "highest structural correlation (top epsilon)")
    show(top_delta_rows(result, 8), "most significant tastes (top delta)")

    popular = top_support_rows(result, 8)
    niche = top_delta_rows(result, 8)
    print(
        "\nnote how the popular artists' delta stays near or below "
        f"{max(r.delta for r in popular):.2f} while the niche tastes reach "
        f"{niche[0].delta:.2f} — taste explains communities only marginally "
        "better than chance in this network."
    )


if __name__ == "__main__":
    main()

"""Case study: which research topics induce collaboration communities?

Mirrors the paper's DBLP analysis (Section 4.1.1) on the synthetic
collaboration network: vertices are authors, edges are co-authorships and
attributes are title terms.  The script mines the graph with SCPM and prints
the three ranking tables of Table 2 (top support, top ε, top δ_lb), then
shows the largest community found for the best topic.

Run with::

    python examples/collaboration_topics.py [scale]
"""

import sys

from repro import SCPM, dblp_like
from repro.analysis.ranking import render_case_study_table


def main() -> None:
    scale = float(sys.argv[1]) if len(sys.argv) > 1 else 0.5
    profile = dblp_like(scale=scale)
    graph = profile.build()
    print(f"{profile.name}: {graph.num_vertices} authors, {graph.num_edges} "
          f"co-authorships, {graph.num_attributes} title terms")
    print(profile.description)

    result = SCPM(graph, profile.params).mine()
    print(
        f"\nSCPM evaluated {result.counters.attribute_sets_evaluated} attribute sets "
        f"in {result.counters.elapsed_seconds:.2f}s\n"
    )
    print(render_case_study_table(result, "collaboration network", n=10, min_set_size=2))

    # inspect the strongest topic: its largest community
    best = result.top_by_delta(1, min_set_size=2)[0]
    print(f"\nstrongest topic by normalized correlation: {{{best.label()}}}")
    print(f"  support={best.support}  epsilon={best.epsilon:.2f}  delta={best.delta:.1f}")
    if best.patterns:
        community = max(best.patterns, key=lambda p: p.size)
        print(
            f"  largest community: {community.size} authors, "
            f"density gamma={community.gamma:.2f}"
        )


if __name__ == "__main__":
    main()

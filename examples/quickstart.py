"""Quickstart: structural correlation pattern mining on the paper's example.

Builds the 11-vertex attributed graph of Figure 1, mines it with the
parameters of Table 1 (σ_min = 3, γ_min = 0.6, min_size = 4, ε_min = 0.5)
and prints the attribute-set statistics and the seven patterns.

Run with::

    python examples/quickstart.py
"""

from repro import SCPM, SCPMParams, paper_example_graph
from repro.analysis.ranking import render_pattern_table


def main() -> None:
    graph = paper_example_graph()
    print(f"example graph: {graph.num_vertices} vertices, {graph.num_edges} edges")

    params = SCPMParams(
        min_support=3,      # sigma_min
        gamma=0.6,          # quasi-clique density
        min_size=4,         # quasi-clique minimum size
        min_epsilon=0.5,    # minimum structural correlation
        top_k=10,           # patterns per attribute set
    )
    result = SCPM(graph, params).mine()

    print("\nattribute sets (sigma, epsilon, delta):")
    for record in sorted(result.evaluated, key=lambda r: r.label()):
        flag = "*" if record.qualified else " "
        print(
            f" {flag} {record.label():6s} sigma={record.support:2d} "
            f"epsilon={record.epsilon:.2f} delta={record.delta:.2f}"
        )
    print("   (* = meets the epsilon/delta thresholds)")

    print("\n" + render_pattern_table(result, title="Structural correlation patterns (Table 1)"))


if __name__ == "__main__":
    main()
